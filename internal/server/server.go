// Package server implements ksimd, the simulation-as-a-service daemon: it
// hosts many concurrent simulation sessions behind a JSON HTTP API, each
// session wrapping one engine from the cuttlesim/rtlsim/interp matrix over
// a design posted as .koika source or picked from the kbench catalogue.
// Sessions are driven by batched step RPCs with register peek/poke, rule
// profiles, conditional breakpoints, reverse execution, and streamed
// VCD/NDJSON traces; self-driving sessions can be checkpointed to a durable
// store, evicted under session-table pressure, restored after a daemon
// restart, and forked for what-if exploration.
//
// Built only on the standard library (net/http, encoding/json): the thesis
// of the paper is that compiled hardware models are ordinary software, and
// ordinary software gets deployed as services.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"cuttlego/internal/bench"
	"cuttlego/internal/diag"
	"cuttlego/internal/sim"
	"cuttlego/internal/vcd"
)

// Config sizes the daemon's limits. The zero value is usable: every field
// has a default.
type Config struct {
	// StoreDir is the durable snapshot directory; "" disables durability
	// (checkpoints then live only in session memory).
	StoreDir string
	// MaxSessions bounds the live session table (default 64). Creating a
	// session past the bound evicts the least-recently-used durable
	// session to the store, or fails with 429 when nothing is evictable.
	MaxSessions int
	// MaxBody bounds request bodies in bytes (default 1 MiB); oversized
	// requests get 413.
	MaxBody int64
	// StepTimeout bounds the simulation time of one step/trace/reverse
	// request (default 30s). An expired budget is reported as a partial
	// result, not an error.
	StepTimeout time.Duration
	// MaxStepCycles caps the cycles one step request may ask for
	// (default 100M).
	MaxStepCycles uint64
	// Workers bounds concurrently executing simulation requests (default
	// 2*NumCPU); excess requests queue (visible as queue_depth).
	Workers int
}

func (c Config) withDefaults() Config {
	if c.MaxSessions <= 0 {
		c.MaxSessions = 64
	}
	if c.MaxBody <= 0 {
		c.MaxBody = 1 << 20
	}
	if c.StepTimeout <= 0 {
		c.StepTimeout = 30 * time.Second
	}
	if c.MaxStepCycles == 0 {
		c.MaxStepCycles = 100_000_000
	}
	if c.Workers <= 0 {
		c.Workers = 16
	}
	return c
}

// Server is the daemon state: the live session table, the durable store,
// the worker pool, and counters.
type Server struct {
	cfg   Config
	store *Store // nil when running without durability
	mux   *http.ServeMux

	mu       sync.Mutex
	sessions map[string]*session
	nextID   uint64

	sem        chan struct{} // worker pool slots
	queueDepth atomic.Int64

	started     time.Time
	totalCycles atomic.Uint64
	checkpoints atomic.Uint64
	restores    atomic.Uint64
	evictions   atomic.Uint64
	rate        rateWindow
}

// New builds a daemon. A non-empty cfg.StoreDir is created if needed.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:      cfg,
		sessions: make(map[string]*session),
		sem:      make(chan struct{}, cfg.Workers),
		started:  time.Now(),
	}
	if cfg.StoreDir != "" {
		st, err := OpenStore(cfg.StoreDir)
		if err != nil {
			return nil, err
		}
		s.store = st
		// Seed the id counter past every stored session: a restarted daemon
		// must never mint an id that collides with durable state, or a new
		// session's checkpoints would overwrite (and DELETE would destroy)
		// an old session's.
		ids, err := st.Sessions()
		if err != nil {
			return nil, fmt.Errorf("server: scan store: %w", err)
		}
		for _, id := range ids {
			if n, ok := sessionSeq(id); ok && n > s.nextID {
				s.nextID = n
			}
		}
	}
	s.mux = http.NewServeMux()
	s.routes()
	return s, nil
}

// Handler returns the daemon's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Close gracefully retires the daemon: every durable session is
// checkpointed to the store (when one is configured) so a restarted daemon
// can resurrect it, then the session table is dropped.
func (s *Server) Close() error {
	s.mu.Lock()
	live := make([]*session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		live = append(live, sess)
	}
	s.sessions = make(map[string]*session)
	s.mu.Unlock()
	var firstErr error
	for _, sess := range live {
		if s.store != nil && sess.durable() {
			if _, err := s.checkpoint(sess); err != nil && firstErr == nil {
				firstErr = fmt.Errorf("checkpoint %s: %w", sess.id, err)
			}
		}
		sess.mu.Lock()
		sess.closeEngine()
		sess.mu.Unlock()
	}
	return firstErr
}

// checkpoint captures a session and, when a store is configured, persists
// meta + snapshot. It returns the checkpoint description.
func (s *Server) checkpoint(sess *session) (CheckpointResponse, error) {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	return s.checkpointLocked(sess)
}

// checkpointLocked is checkpoint's body; callers hold sess.mu, so the
// persisted state cannot advance between the capture and the store write.
func (s *Server) checkpointLocked(sess *session) (CheckpointResponse, error) {
	snap, err := sess.snapshotLocked()
	if err != nil {
		return CheckpointResponse{}, err
	}
	ckpt := "c" + strconv.FormatUint(snap.Cycle, 10)
	resp := CheckpointResponse{
		Checkpoint: ckpt,
		Cycle:      snap.Cycle,
		Digest:     fmt.Sprintf("%016x", snap.Digest()),
	}
	if s.store == nil {
		return resp, nil
	}
	data, err := snap.MarshalBinary()
	if err != nil {
		return CheckpointResponse{}, err
	}
	if err := s.store.SaveMeta(SessionMeta{
		ID: sess.id, Source: sess.src, Catalog: sess.catalog, Config: sess.cfg, Created: time.Now(),
	}); err != nil {
		return CheckpointResponse{}, err
	}
	if err := s.store.SaveSnapshot(sess.id, ckpt, data); err != nil {
		return CheckpointResponse{}, err
	}
	s.checkpoints.Add(1)
	return resp, nil
}

// sessionSeq parses a daemon-minted "s<N>" session id; foreign ids report
// false.
func sessionSeq(id string) (uint64, bool) {
	rest, ok := strings.CutPrefix(id, "s")
	if !ok {
		return 0, false
	}
	n, err := strconv.ParseUint(rest, 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// --- session table ----------------------------------------------------------

var errTableFull = errors.New("session table full and nothing evictable")

// admit inserts a new session, evicting if the table is at its bound. If a
// session with the same id is already live — a lost resurrection race — the
// existing session wins and is returned untouched; the check and the insert
// happen under one hold of mu, so two racing resurrections can never both
// land. Callers must not hold mu or sess.mu.
func (s *Server) admit(sess *session) (*session, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if cur, ok := s.sessions[sess.id]; ok {
			return cur, nil
		}
		if len(s.sessions) < s.cfg.MaxSessions {
			break
		}
		victim := s.lruDurableLocked()
		if victim == nil || s.store == nil {
			return nil, errTableFull
		}
		// The victim stays in the table — visible to lookups, exclusively
		// claimed via the evicting flag — until its checkpoint is durably
		// written. Removing it first would let a concurrent lookup in the
		// checkpoint window resurrect a stale checkpoint, silently rolling
		// the session back; and a failed checkpoint would drop live state.
		// Its own mu is held across the write so the persisted snapshot is
		// the state clients last observed.
		victim.evicting = true
		s.mu.Unlock()
		victim.mu.Lock()
		s.mu.Lock()
		if _, still := s.sessions[victim.id]; !still {
			// Deleted while we waited for its lock; the slot is already free.
			victim.evicting = false
			victim.mu.Unlock()
			continue
		}
		s.mu.Unlock()
		_, err := s.checkpointLocked(victim)
		s.mu.Lock()
		victim.evicting = false
		if err != nil {
			victim.mu.Unlock()
			return nil, fmt.Errorf("evicting %s: %w", victim.id, err)
		}
		delete(s.sessions, victim.id)
		victim.closeEngine()
		victim.mu.Unlock()
		s.evictions.Add(1)
	}
	sess.lastUsed = time.Now()
	s.sessions[sess.id] = sess
	return sess, nil
}

// lruDurableLocked picks the least-recently-used evictable session,
// skipping sessions another admit is already evicting.
func (s *Server) lruDurableLocked() *session {
	var victim *session
	for _, sess := range s.sessions {
		if !sess.durable() || sess.evicting {
			continue
		}
		if victim == nil || sess.lastUsed.Before(victim.lastUsed) {
			victim = sess
		}
	}
	return victim
}

// lookup finds a live session and bumps its LRU stamp. A session that is
// not live but has durable state is resurrected transparently — that is
// what eviction promises the client.
func (s *Server) lookup(id string) (*session, error) {
	s.mu.Lock()
	sess, ok := s.sessions[id]
	if ok {
		sess.lastUsed = time.Now()
	}
	s.mu.Unlock()
	if ok {
		return sess, nil
	}
	if s.store == nil {
		return nil, errUnknownSession(id)
	}
	// Resurrect errors carry their own status: missing durable state is 404,
	// a full table is 429, a corrupt checkpoint is 500. Collapsing them all
	// to 404 would make corruption indistinguishable from a missing session.
	return s.resurrect(id, "")
}

type unknownSession string

func errUnknownSession(id string) error { return unknownSession(id) }
func (u unknownSession) Error() string  { return fmt.Sprintf("unknown session %q", string(u)) }

// resurrect rebuilds a stored session at one of its checkpoints (latest if
// ckpt is ""). The live session keeps its stored id.
func (s *Server) resurrect(id, ckpt string) (_ *session, err error) {
	defer diag.Guard("server: resurrect", &err)
	if s.store == nil {
		return nil, fmt.Errorf("daemon runs without a store; nothing to restore from")
	}
	meta, err := s.store.LoadMeta(id)
	if err != nil {
		return nil, fmt.Errorf("%w: no durable state", errUnknownSession(id))
	}
	if ckpt == "" {
		cks, err := s.store.Checkpoints(id)
		if err != nil || len(cks) == 0 {
			return nil, fmt.Errorf("%w: stored session has no checkpoints", errUnknownSession(id))
		}
		ckpt = cks[len(cks)-1]
	}
	data, err := s.store.LoadSnapshot(id, ckpt)
	if err != nil {
		return nil, httpError{http.StatusNotFound,
			fmt.Errorf("session %q has no checkpoint %q", id, ckpt)}
	}
	var snap sim.Snapshot
	if err := snap.UnmarshalBinary(data); err != nil {
		return nil, httpError{http.StatusInternalServerError,
			fmt.Errorf("checkpoint %s/%s corrupt: %w", id, ckpt, err)}
	}
	sess, err := newSession(meta.ID, CreateRequest{
		Source: meta.Source, Catalog: meta.Catalog,
		Engine: meta.Config.Engine, Level: meta.Config.Level,
		Backend: meta.Config.Backend, Optimize: meta.Config.Optimize,
	})
	if err != nil {
		return nil, fmt.Errorf("rebuilding session %q: %w", id, err)
	}
	if err := sess.restoreSnapshot(snap); err != nil {
		return nil, fmt.Errorf("restoring session %q: %w", id, err)
	}
	sess.restored = true
	// Another request may have resurrected the same id concurrently; admit
	// atomically yields to an already-live session, so the first one in
	// wins and the loser's rebuild is discarded.
	admitted, err := s.admit(sess)
	if err != nil {
		return nil, err
	}
	if admitted != sess {
		return admitted, nil
	}
	s.restores.Add(1)
	return sess, nil
}

// --- worker pool ------------------------------------------------------------

// acquire takes a pool slot, queueing when the pool is saturated.
func (s *Server) acquire(ctx context.Context) error {
	s.queueDepth.Add(1)
	defer s.queueDepth.Add(-1)
	select {
	case s.sem <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (s *Server) release() { <-s.sem }

// --- cycle accounting -------------------------------------------------------

// rateWindow tracks recent cycle throughput in one-second buckets, so
// /metrics can report cycles/sec over the last few seconds rather than a
// lifetime average.
type rateWindow struct {
	mu      sync.Mutex
	seconds [16]int64 // unix second each bucket belongs to
	cycles  [16]uint64
}

func (r *rateWindow) add(now time.Time, n uint64) {
	sec := now.Unix()
	i := int(sec % int64(len(r.seconds)))
	r.mu.Lock()
	if r.seconds[i] != sec {
		r.seconds[i], r.cycles[i] = sec, 0
	}
	r.cycles[i] += n
	r.mu.Unlock()
}

// perSec averages over the window's last 10 complete seconds.
func (r *rateWindow) perSec(now time.Time) float64 {
	sec := now.Unix()
	var sum uint64
	r.mu.Lock()
	for i := range r.seconds {
		if age := sec - r.seconds[i]; age >= 1 && age <= 10 {
			sum += r.cycles[i]
		}
	}
	r.mu.Unlock()
	return float64(sum) / 10
}

func (s *Server) addCycles(n uint64) {
	s.totalCycles.Add(n)
	s.rate.add(time.Now(), n)
}

// --- HTTP plumbing ----------------------------------------------------------

func (s *Server) routes() {
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("POST /v1/sessions", s.handleCreate)
	s.mux.HandleFunc("GET /v1/sessions", s.handleList)
	s.mux.HandleFunc("POST /v1/resurrect", s.handleResurrect)
	s.mux.HandleFunc("GET /v1/sessions/{id}", s.handleInfo)
	s.mux.HandleFunc("DELETE /v1/sessions/{id}", s.handleDelete)
	s.mux.HandleFunc("POST /v1/sessions/{id}/step", s.handleStep)
	s.mux.HandleFunc("POST /v1/sessions/{id}/regs", s.handleRegs)
	s.mux.HandleFunc("GET /v1/sessions/{id}/profile", s.handleProfile)
	s.mux.HandleFunc("POST /v1/sessions/{id}/break", s.handleBreak)
	s.mux.HandleFunc("POST /v1/sessions/{id}/checkpoint", s.handleCheckpoint)
	s.mux.HandleFunc("POST /v1/sessions/{id}/restore", s.handleRestore)
	s.mux.HandleFunc("POST /v1/sessions/{id}/fork", s.handleFork)
	s.mux.HandleFunc("POST /v1/sessions/{id}/reverse", s.handleReverse)
	s.mux.HandleFunc("GET /v1/sessions/{id}/trace", s.handleTrace)
}

// decode reads a bounded JSON request body. Exceeding the body budget is
// 413; everything else wrong with the body is 400.
func (s *Server) decode(w http.ResponseWriter, r *http.Request, into any) error {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBody)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			return httpError{http.StatusRequestEntityTooLarge,
				fmt.Errorf("request body exceeds %d bytes", s.cfg.MaxBody)}
		}
		return httpError{http.StatusBadRequest, fmt.Errorf("request body: %w", err)}
	}
	return nil
}

// httpError pins a specific status to an error.
type httpError struct {
	status int
	err    error
}

func (e httpError) Error() string { return e.err.Error() }
func (e httpError) Unwrap() error { return e.err }

// writeError maps an error to the API's status contract: explicit statuses
// pass through; unknown sessions are 404; non-durable operations are 409;
// toolchain bugs (diag.Internal) are 500; everything else the client can
// fix is 400.
func writeError(w http.ResponseWriter, err error) {
	status := http.StatusBadRequest
	var he httpError
	var unknown unknownSession
	var internal *diag.Internal
	switch {
	case errors.As(err, &he):
		status = he.status
	case errors.As(err, &unknown):
		status = http.StatusNotFound
	case errors.Is(err, errNotDurable):
		status = http.StatusConflict
	case errors.Is(err, errTableFull):
		status = http.StatusTooManyRequests
	case errors.As(err, &internal):
		status = http.StatusInternalServerError
	}
	writeJSON(w, status, ErrorResponse{Error: err.Error()})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// --- handlers ---------------------------------------------------------------

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	nsess := len(s.sessions)
	s.mu.Unlock()
	now := time.Now()
	writeJSON(w, http.StatusOK, Metrics{
		Sessions:     nsess,
		TotalCycles:  s.totalCycles.Load(),
		CyclesPerSec: s.rate.perSec(now),
		QueueDepth:   int(s.queueDepth.Load()),
		Checkpoints:  s.checkpoints.Load(),
		Restores:     s.restores.Load(),
		Evictions:    s.evictions.Load(),
		UptimeSec:    now.Sub(s.started).Seconds(),
	})
}

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	var req CreateRequest
	if err := s.decode(w, r, &req); err != nil {
		writeError(w, err)
		return
	}
	s.mu.Lock()
	s.nextID++
	id := "s" + strconv.FormatUint(s.nextID, 10)
	s.mu.Unlock()
	sess, err := newSession(id, req)
	if err != nil {
		writeError(w, err)
		return
	}
	if _, err := s.admit(sess); err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, sess.info())
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	live := make([]*session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		live = append(live, sess)
	}
	s.mu.Unlock()
	resp := ListResponse{Sessions: make([]SessionInfo, 0, len(live))}
	for _, sess := range live {
		resp.Sessions = append(resp.Sessions, sess.info())
	}
	sortSessions(resp.Sessions)
	writeJSON(w, http.StatusOK, resp)
}

func sortSessions(infos []SessionInfo) {
	for i := 1; i < len(infos); i++ { // insertion sort: tiny n, no extra imports
		for j := i; j > 0 && infos[j-1].ID > infos[j].ID; j-- {
			infos[j-1], infos[j] = infos[j], infos[j-1]
		}
	}
}

func (s *Server) handleResurrect(w http.ResponseWriter, r *http.Request) {
	var req ResurrectRequest
	if err := s.decode(w, r, &req); err != nil {
		writeError(w, err)
		return
	}
	s.mu.Lock()
	_, live := s.sessions[req.Session]
	s.mu.Unlock()
	if live {
		writeError(w, httpError{http.StatusConflict,
			fmt.Errorf("session %q is already live; use its restore endpoint to rewind it", req.Session)})
		return
	}
	sess, err := s.resurrect(req.Session, req.Checkpoint)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, sess.info())
}

func (s *Server) handleInfo(w http.ResponseWriter, r *http.Request) {
	sess, err := s.lookup(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, sess.info())
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	sess, ok := s.sessions[id]
	delete(s.sessions, id)
	s.mu.Unlock()
	if ok {
		sess.mu.Lock()
		sess.closeEngine()
		sess.mu.Unlock()
	}
	if !ok {
		stored := false
		if s.store != nil && validID(id) {
			_, err := s.store.LoadMeta(id)
			stored = err == nil
		}
		if !stored {
			writeError(w, errUnknownSession(id))
			return
		}
	}
	if s.store != nil && validID(id) {
		_ = s.store.Remove(id)
	}
	writeJSON(w, http.StatusOK, map[string]string{"deleted": id})
}

func (s *Server) handleStep(w http.ResponseWriter, r *http.Request) {
	sess, err := s.lookup(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	var req StepRequest
	if err := s.decode(w, r, &req); err != nil {
		writeError(w, err)
		return
	}
	if req.Cycles == 0 || req.Cycles > s.cfg.MaxStepCycles {
		writeError(w, fmt.Errorf("cycles must be in [1, %d], got %d", s.cfg.MaxStepCycles, req.Cycles))
		return
	}
	if err := s.acquire(r.Context()); err != nil {
		writeError(w, httpError{http.StatusServiceUnavailable, fmt.Errorf("queue wait: %w", err)})
		return
	}
	defer s.release()
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.StepTimeout)
	defer cancel()
	ran, stopped, err := sess.step(ctx, req.Cycles)
	s.addCycles(ran)
	if err != nil {
		writeError(w, err)
		return
	}
	sess.mu.Lock()
	resp := StepResponse{Ran: ran, Cycle: sess.eng.CycleCount(), Stopped: stopped, Fired: sess.fired()}
	sess.mu.Unlock()
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleRegs(w http.ResponseWriter, r *http.Request) {
	sess, err := s.lookup(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	var req RegsRequest
	if err := s.decode(w, r, &req); err != nil {
		writeError(w, err)
		return
	}
	resp, err := sess.regs(req)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleProfile(w http.ResponseWriter, r *http.Request) {
	sess, err := s.lookup(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	resp, err := sess.profile()
	if err != nil {
		writeError(w, httpError{http.StatusConflict, err})
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleBreak(w http.ResponseWriter, r *http.Request) {
	sess, err := s.lookup(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	var req BreakRequest
	if err := s.decode(w, r, &req); err != nil {
		writeError(w, err)
		return
	}
	if err := sess.setBreak(req); err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	sess, err := s.lookup(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	resp, err := s.checkpoint(sess)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleRestore(w http.ResponseWriter, r *http.Request) {
	sess, err := s.lookup(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	var req RestoreRequest
	if err := s.decode(w, r, &req); err != nil {
		writeError(w, err)
		return
	}
	if req.Checkpoint == "" {
		writeError(w, fmt.Errorf("checkpoint id required"))
		return
	}
	snap, err := s.loadCheckpoint(sess, req.Checkpoint)
	if err != nil {
		writeError(w, err)
		return
	}
	if err := sess.restoreSnapshot(snap); err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, sess.info())
}

// loadCheckpoint finds a checkpoint in the durable store, falling back to
// the session's in-memory snapshot ring ("c<cycle>" ids).
func (s *Server) loadCheckpoint(sess *session, ckpt string) (sim.Snapshot, error) {
	if s.store != nil {
		if data, err := s.store.LoadSnapshot(sess.id, ckpt); err == nil {
			var snap sim.Snapshot
			if err := snap.UnmarshalBinary(data); err != nil {
				return sim.Snapshot{}, fmt.Errorf("checkpoint %s corrupt: %w", ckpt, err)
			}
			return snap, nil
		}
	}
	sess.mu.Lock()
	defer sess.mu.Unlock()
	for _, snap := range sess.snaps {
		if "c"+strconv.FormatUint(snap.Cycle, 10) == ckpt {
			return snap, nil
		}
	}
	return sim.Snapshot{}, fmt.Errorf("session %q has no checkpoint %q", sess.id, ckpt)
}

func (s *Server) handleFork(w http.ResponseWriter, r *http.Request) {
	sess, err := s.lookup(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	snap, err := sess.snapshot()
	if err != nil {
		writeError(w, err)
		return
	}
	s.mu.Lock()
	s.nextID++
	id := "s" + strconv.FormatUint(s.nextID, 10)
	s.mu.Unlock()
	fork, err := newSession(id, CreateRequest{
		Source: sess.src, Catalog: sess.catalog,
		Engine: sess.cfg.Engine, Level: sess.cfg.Level,
		Backend: sess.cfg.Backend, Optimize: sess.cfg.Optimize,
	})
	if err != nil {
		writeError(w, err)
		return
	}
	if err := fork.restoreSnapshot(snap); err != nil {
		writeError(w, err)
		return
	}
	if _, err := s.admit(fork); err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, fork.info())
}

func (s *Server) handleReverse(w http.ResponseWriter, r *http.Request) {
	sess, err := s.lookup(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	var req ReverseRequest
	if err := s.decode(w, r, &req); err != nil {
		writeError(w, err)
		return
	}
	if err := s.acquire(r.Context()); err != nil {
		writeError(w, httpError{http.StatusServiceUnavailable, fmt.Errorf("queue wait: %w", err)})
		return
	}
	defer s.release()
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.StepTimeout)
	defer cancel()
	if err := sess.reverse(ctx, req.Cycles); err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, sess.info())
}

// handleTrace streams a trace of the next N cycles: format=vcd streams a
// Value Change Dump, format=events (default) streams NDJSON TraceEvent
// lines. The response is chunked; the session advances as the trace runs.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	sess, err := s.lookup(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	q := r.URL.Query()
	cycles, err := strconv.ParseUint(q.Get("cycles"), 10, 64)
	if err != nil || cycles == 0 || cycles > s.cfg.MaxStepCycles {
		writeError(w, fmt.Errorf("trace wants cycles in [1, %d], got %q", s.cfg.MaxStepCycles, q.Get("cycles")))
		return
	}
	format := q.Get("format")
	if format == "" {
		format = "events"
	}
	if format != "events" && format != "vcd" {
		writeError(w, fmt.Errorf("unknown trace format %q (want events or vcd)", format))
		return
	}
	if err := s.acquire(r.Context()); err != nil {
		writeError(w, httpError{http.StatusServiceUnavailable, fmt.Errorf("queue wait: %w", err)})
		return
	}
	defer s.release()
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.StepTimeout)
	defer cancel()

	sess.mu.Lock()
	defer sess.mu.Unlock()
	// The stream holds sess.mu and a worker-pool slot, and the step-timeout
	// ctx only bounds simulation — not writes to a stalled client. A rolling
	// write deadline, extended on every flush while the stream progresses,
	// fails blocked writes instead, so a dead client cannot pin the session
	// and a slot forever. (SetWriteDeadline errors are ignored: recorders
	// and exotic transports without deadlines just keep the old behavior.)
	rc := http.NewResponseController(w)
	flush := func() {
		_ = rc.Flush()
		_ = rc.SetWriteDeadline(time.Now().Add(s.cfg.StepTimeout))
	}
	_ = rc.SetWriteDeadline(time.Now().Add(s.cfg.StepTimeout))
	var ran uint64
	defer func() { s.addCycles(ran) }()
	switch format {
	case "vcd":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		vw := vcd.New(w, sess.eng)
		if err := vw.Sample(); err != nil {
			return
		}
		var sinceFlush int
		n, _, err := sess.stepLocked(ctx, cycles, func() error {
			if err := vw.Sample(); err != nil {
				return err
			}
			if sinceFlush++; sinceFlush >= 1024 {
				sinceFlush = 0
				flush()
			}
			return nil
		})
		ran = n
		_ = err // the status line is out; the stream just ends
		flush()
	default:
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.WriteHeader(http.StatusOK)
		enc := json.NewEncoder(w)
		d := sess.design()
		last := sess.valuesLocked()
		n, _, _ := sess.stepLocked(ctx, cycles, func() error {
			ev := TraceEvent{Cycle: sess.eng.CycleCount()}
			for _, name := range d.Schedule {
				if sess.eng.RuleFired(name) {
					ev.Fired = append(ev.Fired, name)
				}
			}
			now := sess.valuesLocked()
			for i, v := range now {
				if v != last[i] {
					if ev.Changed == nil {
						ev.Changed = make(map[string]RegValue)
					}
					ev.Changed[d.Registers[i].Name] = FromBits(v)
				}
			}
			last = now
			if err := enc.Encode(ev); err != nil {
				return err
			}
			flush()
			return nil
		})
		ran = n
	}
}

// Describe returns a one-line description of the daemon's limits, for the
// ksimd startup banner.
func (s *Server) Describe() string {
	return fmt.Sprintf("max-sessions=%d workers=%d max-body=%dB step-timeout=%s store=%q",
		s.cfg.MaxSessions, s.cfg.Workers, s.cfg.MaxBody, s.cfg.StepTimeout, s.cfg.StoreDir)
}

// catalogNames is re-exported for the CLI usage string.
func catalogNames() []string { return bench.Names() }
