package server

// White-box tests for the execution tiers: transparent promotion of hot
// sessions onto AOT-compiled subprocesses, crash demotion back onto the
// in-process engine, and subprocess reaping at daemon shutdown. These live
// inside the package because they need the session internals (the tier
// fields, the subprocess pid) that the HTTP surface deliberately hides.

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"syscall"
	"testing"
	"time"

	"cuttlego/internal/native"
)

// promoteTestServer builds a daemon with the native tier enabled and a low
// promotion threshold, plus a session pair: the candidate (default
// cuttlesim, promotable) and an interp reference that never promotes.
func promoteTestServer(t *testing.T, promoteAfter uint64) (*Server, *session, *session) {
	t.Helper()
	srv, err := New(Config{NativeCacheDir: t.TempDir(), PromoteAfter: promoteAfter})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	sess, err := newSession("s1", CreateRequest{Catalog: "collatz"}, srv.env())
	if err != nil {
		t.Fatalf("newSession: %v", err)
	}
	ref, err := newSession("s2", CreateRequest{Catalog: "collatz", Engine: "interp"}, srv.env())
	if err != nil {
		t.Fatalf("newSession(interp): %v", err)
	}
	if _, err := srv.admit(sess); err != nil {
		t.Fatalf("admit: %v", err)
	}
	if _, err := srv.admit(ref); err != nil {
		t.Fatalf("admit(ref): %v", err)
	}
	return srv, sess, ref
}

// stepUntilPromoted steps the session in small batches until it lands on
// the native tier (the compile is asynchronous, so this polls).
func stepUntilPromoted(t *testing.T, sess *session) {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for time.Now().Before(deadline) {
		if _, _, err := sess.step(context.Background(), 64); err != nil {
			t.Fatalf("step: %v", err)
		}
		sess.mu.Lock()
		tier := sess.tier
		sess.mu.Unlock()
		if tier == "native" {
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("session never promoted to the native tier")
}

// catchUp steps the reference session to exactly the candidate's cycle and
// returns both digests for comparison.
func catchUp(t *testing.T, sess, ref *session) (got, want string) {
	t.Helper()
	cyc := sess.info().Cycle
	refCyc := ref.info().Cycle
	if refCyc > cyc {
		t.Fatalf("reference session ran ahead: %d > %d", refCyc, cyc)
	}
	if _, _, err := ref.step(context.Background(), cyc-refCyc); err != nil {
		t.Fatalf("reference step: %v", err)
	}
	return sess.info().Digest, ref.info().Digest
}

// TestPromotionDigestParity drives a cuttlesim session past the promotion
// threshold and checks the contract: the session transparently lands on the
// native tier with zero observable state change — at every compared cycle
// its digest equals an interp reference that never left the process.
func TestPromotionDigestParity(t *testing.T) {
	srv, sess, ref := promoteTestServer(t, 128)

	// Below the threshold nothing happens.
	if _, _, err := sess.step(context.Background(), 100); err != nil {
		t.Fatalf("step: %v", err)
	}
	if inf := sess.info(); inf.Tier != "" {
		t.Fatalf("promoted below threshold: %+v", inf)
	}

	stepUntilPromoted(t, sess)
	if got, want := catchUp(t, sess, ref); got != want {
		t.Fatalf("digest diverged across promotion: native %s, interp %s", got, want)
	}
	if inf := sess.info(); inf.Tier != "native" || !inf.Durable {
		t.Fatalf("promoted session info wrong: %+v", inf)
	}
	if n := srv.tier.promotions.Load(); n != 1 {
		t.Fatalf("promotions counter = %d, want 1", n)
	}

	// The tier swap must stay invisible to the rest of the surface:
	// stepping, snapshots, and reverse execution keep working.
	if ran, _, err := sess.step(context.Background(), 500); err != nil || ran != 500 {
		t.Fatalf("post-promotion step: ran %d, err %v", ran, err)
	}
	if err := sess.reverse(context.Background(), 100); err != nil {
		t.Fatalf("post-promotion reverse: %v", err)
	}
	if _, _, err := sess.step(context.Background(), 100); err != nil {
		t.Fatalf("step after reverse: %v", err)
	}
	if got, want := catchUp(t, sess, ref); got != want {
		t.Fatalf("digest diverged after reverse on the native tier: %s vs %s", got, want)
	}
}

// TestPromotedSessionDemotesOnCrash kills the promoted subprocess out from
// under a session and checks that the next step transparently demotes: the
// in-process engine is rebuilt from the snapshot ring, the step completes
// in full, and state stays bit-identical to the reference.
func TestPromotedSessionDemotesOnCrash(t *testing.T) {
	srv, sess, ref := promoteTestServer(t, 128)
	stepUntilPromoted(t, sess)

	sess.mu.Lock()
	ne, ok := underlying(sess.eng).(*native.Engine)
	sess.mu.Unlock()
	if !ok {
		t.Fatalf("promoted session is not running a native engine")
	}
	if err := syscall.Kill(ne.Pid(), syscall.SIGKILL); err != nil {
		t.Fatalf("kill subprocess: %v", err)
	}

	ran, stopped, err := sess.step(context.Background(), 300)
	if err != nil || stopped != "" || ran != 300 {
		t.Fatalf("step across crash: ran=%d stopped=%q err=%v", ran, stopped, err)
	}
	if inf := sess.info(); inf.Tier != "" || inf.State != "" {
		t.Fatalf("session should be healthy and back in-process: %+v", inf)
	}
	if got, want := catchUp(t, sess, ref); got != want {
		t.Fatalf("digest diverged across demotion: %s vs %s", got, want)
	}
	if n := srv.tier.demotions.Load(); n != 1 {
		t.Fatalf("demotions counter = %d, want 1", n)
	}
	// Demotion is sticky: the session must not bounce back onto a binary
	// that just crashed.
	if _, _, err := sess.step(context.Background(), 256); err != nil {
		t.Fatalf("step after demotion: %v", err)
	}
	sess.mu.Lock()
	noPromote, tier := sess.noPromote, sess.tier
	sess.mu.Unlock()
	if !noPromote || tier != "" {
		t.Fatalf("demoted session re-promoted: noPromote=%v tier=%q", noPromote, tier)
	}
}

// TestNativeEngineSessionHTTP exercises the explicit native engine through
// the HTTP surface: create, step, digest parity with interp, the profile
// endpoint, and the tier/metrics reporting.
func TestNativeEngineSessionHTTP(t *testing.T) {
	srv, err := New(Config{NativeCacheDir: t.TempDir()})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	post := func(path string, body, into any) {
		t.Helper()
		data, _ := json.Marshal(body)
		resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(data))
		if err != nil {
			t.Fatalf("POST %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode/100 != 2 {
			var e ErrorResponse
			_ = json.NewDecoder(resp.Body).Decode(&e)
			t.Fatalf("POST %s: status %d: %s", path, resp.StatusCode, e.Error)
		}
		if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
			t.Fatalf("POST %s: decode: %v", path, err)
		}
	}
	get := func(path string, into any) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
			t.Fatalf("GET %s: decode: %v", path, err)
		}
	}

	var nat, ref SessionInfo
	post("/v1/sessions", CreateRequest{Catalog: "collatz", Engine: "native"}, &nat)
	if nat.Tier != "native" || nat.Engine != "native" {
		t.Fatalf("native session info: %+v", nat)
	}
	post("/v1/sessions", CreateRequest{Catalog: "collatz", Engine: "interp"}, &ref)

	var step StepResponse
	post("/v1/sessions/"+nat.ID+"/step", StepRequest{Cycles: 500}, &step)
	if step.Ran != 500 {
		t.Fatalf("native step ran %d, want 500", step.Ran)
	}
	post("/v1/sessions/"+ref.ID+"/step", StepRequest{Cycles: 500}, &step)

	get("/v1/sessions/"+nat.ID, &nat)
	get("/v1/sessions/"+ref.ID, &ref)
	if nat.Cycle != 500 || nat.Digest != ref.Digest {
		t.Fatalf("native/interp mismatch at cycle 500: %+v vs %+v", nat, ref)
	}

	var prof ProfileResponse
	get("/v1/sessions/"+nat.ID+"/profile", &prof)
	var commits uint64
	for _, r := range prof.Rules {
		commits += r.Commits
	}
	if len(prof.Rules) == 0 || commits == 0 {
		t.Fatalf("native profile empty: %+v", prof)
	}
}

// TestMetricsCountPromotions checks that tier transitions surface in the
// /metrics document.
func TestMetricsCountPromotions(t *testing.T) {
	srv, sess, _ := promoteTestServer(t, 128)
	stepUntilPromoted(t, sess)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	var m Metrics
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if m.Promotions != 1 {
		t.Fatalf("metrics promotions = %d, want 1", m.Promotions)
	}
}

// TestCloseReapsSubprocesses is the no-orphan regression test: a daemon
// with live native sessions must not leave simulator subprocesses behind
// when it shuts down.
func TestCloseReapsSubprocesses(t *testing.T) {
	srv, err := New(Config{NativeCacheDir: t.TempDir()})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	sess, err := newSession("s1", CreateRequest{Catalog: "collatz", Engine: "native"}, srv.env())
	if err != nil {
		t.Fatalf("newSession: %v", err)
	}
	if _, err := srv.admit(sess); err != nil {
		t.Fatalf("admit: %v", err)
	}
	sess.mu.Lock()
	ne := underlying(sess.eng).(*native.Engine)
	pid := ne.Pid()
	sess.mu.Unlock()
	if native.Live() == 0 {
		t.Fatalf("expected a live subprocess before shutdown")
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if n := native.Live(); n != 0 {
		t.Fatalf("%d subprocesses survived shutdown", n)
	}
	if err := syscall.Kill(pid, 0); err != syscall.ESRCH {
		t.Fatalf("subprocess %d still exists after shutdown (kill(0) = %v)", pid, err)
	}
}

// TestPromoteAfterRequiresCache: a promotion threshold without a compile
// cache is a configuration error, not a silent no-op.
func TestPromoteAfterRequiresCache(t *testing.T) {
	if _, err := New(Config{PromoteAfter: 100}); err == nil {
		t.Fatalf("New accepted PromoteAfter without NativeCacheDir")
	}
	// And the native engine is refused outright when the tier is off.
	srv, err := New(Config{})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	if _, err := newSession("s1", CreateRequest{Catalog: "collatz", Engine: "native"}, srv.env()); err == nil {
		t.Fatalf("native session created without a native cache")
	}
}
