package server_test

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"testing"
	"time"

	"cuttlego/internal/faultinj"
	"cuttlego/internal/kclient"
	"cuttlego/internal/native"
	"cuttlego/internal/server"
)

// TestForkIsCopyOnWrite: a fork must be born lazy (cow), answer info with
// its parent's exact digest and cycle, and materialize into an independent
// engine on first step — without disturbing the parent.
func TestForkIsCopyOnWrite(t *testing.T) {
	ctx := context.Background()
	srv, c := newTestDaemon(t, server.Config{})
	_ = srv
	parent, err := c.Create(ctx, server.CreateRequest{Catalog: "collatz"})
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	if _, err := c.Step(ctx, parent.ID, 40); err != nil {
		t.Fatalf("step parent: %v", err)
	}
	parent, err = c.Info(ctx, parent.ID)
	if err != nil {
		t.Fatalf("info parent: %v", err)
	}

	fk, err := c.Fork(ctx, parent.ID)
	if err != nil {
		t.Fatalf("fork: %v", err)
	}
	if !fk.Cow {
		t.Fatalf("fork not reported as cow: %+v", fk)
	}
	if fk.Digest != parent.Digest || fk.Cycle != parent.Cycle {
		t.Fatalf("fork digest/cycle = %s@%d, want parent's %s@%d", fk.Digest, fk.Cycle, parent.Digest, parent.Cycle)
	}
	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	if m.Forks != 1 || m.LazyForks != 1 {
		t.Fatalf("metrics forks/lazy = %d/%d, want 1/1", m.Forks, m.LazyForks)
	}

	// Stepping the parent must not move the (lazy) fork: the fork owns an
	// immutable base snapshot, not a reference into the parent's engine.
	if _, err := c.Step(ctx, parent.ID, 10); err != nil {
		t.Fatalf("step parent past fork: %v", err)
	}
	fkAgain, err := c.Info(ctx, fk.ID)
	if err != nil {
		t.Fatalf("info fork: %v", err)
	}
	if fkAgain.Digest != parent.Digest || fkAgain.Cycle != parent.Cycle {
		t.Fatalf("lazy fork drifted with parent: %s@%d, want %s@%d",
			fkAgain.Digest, fkAgain.Cycle, parent.Digest, parent.Cycle)
	}

	// First step materializes the fork and the combined trajectory must be
	// cycle-exact: fork at 40, stepped 60 more, equals a straight 100-cycle
	// run of the same design.
	st, err := c.Step(ctx, fk.ID, 60)
	if err != nil {
		t.Fatalf("step fork: %v", err)
	}
	if st.Cycle != 100 {
		t.Fatalf("fork cycle after step = %d, want 100", st.Cycle)
	}
	fkDone, err := c.Info(ctx, fk.ID)
	if err != nil {
		t.Fatalf("info fork: %v", err)
	}
	if fkDone.Cow {
		t.Fatalf("fork still cow after materializing step")
	}
	if want := referenceDigest(t, "collatz", 100); fkDone.Digest != want {
		t.Fatalf("materialized fork digest = %s, want reference %s", fkDone.Digest, want)
	}
	m, _ = c.Metrics(ctx)
	if m.LazyForks != 0 {
		t.Fatalf("lazy forks after materialization = %d, want 0", m.LazyForks)
	}
}

// TestForkPokeAndForkOfFork: register pokes land in the fork's overlay
// without touching the parent, and a fork of a poked fork sees the poke.
func TestForkPokeAndForkOfFork(t *testing.T) {
	ctx := context.Background()
	_, c := newTestDaemon(t, server.Config{})
	parent, err := c.Create(ctx, server.CreateRequest{Source: gcdSrc})
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	if _, err := c.Step(ctx, parent.ID, 2); err != nil {
		t.Fatalf("step: %v", err)
	}
	before, err := c.Regs(ctx, parent.ID, server.RegsRequest{Get: []string{"a"}})
	if err != nil {
		t.Fatalf("regs parent: %v", err)
	}

	f1, err := c.Fork(ctx, parent.ID)
	if err != nil {
		t.Fatalf("fork: %v", err)
	}
	poke := server.RegValue{Width: 16, Hex: "2a"}
	got, err := c.Regs(ctx, f1.ID, server.RegsRequest{Set: map[string]server.RegValue{"a": poke}, Get: []string{"a"}})
	if err != nil {
		t.Fatalf("poke fork: %v", err)
	}
	if got.Values["a"].Hex != "2a" {
		t.Fatalf(`fork a = %q, want "2a"`, got.Values["a"].Hex)
	}
	// The poke must be invisible to the parent.
	after, err := c.Regs(ctx, parent.ID, server.RegsRequest{Get: []string{"a"}})
	if err != nil {
		t.Fatalf("regs parent: %v", err)
	}
	if after.Values["a"] != before.Values["a"] {
		t.Fatalf("parent register changed by fork poke: %v -> %v", before.Values["a"], after.Values["a"])
	}

	// Fork-of-fork inherits the overlay (including the poke), and the two
	// lazy forks agree on their digest.
	f2, err := c.Fork(ctx, f1.ID)
	if err != nil {
		t.Fatalf("fork of fork: %v", err)
	}
	f1Info, err := c.Info(ctx, f1.ID)
	if err != nil {
		t.Fatalf("info f1: %v", err)
	}
	if !f2.Cow || f2.Digest != f1Info.Digest || f2.Cycle != f1Info.Cycle {
		t.Fatalf("fork-of-fork = cow=%v %s@%d, want cow=true %s@%d",
			f2.Cow, f2.Digest, f2.Cycle, f1Info.Digest, f1Info.Cycle)
	}
	g2, err := c.Regs(ctx, f2.ID, server.RegsRequest{Get: []string{"a"}})
	if err != nil {
		t.Fatalf("regs f2: %v", err)
	}
	if g2.Values["a"].Hex != "2a" {
		t.Fatalf(`fork-of-fork a = %q, want inherited "2a"`, g2.Values["a"].Hex)
	}

	// Materializing the poked fork must carry the override into the engine.
	if _, err := c.Step(ctx, f1.ID, 1); err != nil {
		t.Fatalf("step poked fork: %v", err)
	}
}

// TestForkDigestParityConcurrent storms one parent with concurrent forks;
// every fork must observe the parent's exact digest and cycle. Run under
// -race this doubles as the CoW locking check.
func TestForkDigestParityConcurrent(t *testing.T) {
	ctx := context.Background()
	_, c := newTestDaemon(t, server.Config{MaxSessions: 128})
	parent, err := c.Create(ctx, server.CreateRequest{Catalog: "collatz"})
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	if _, err := c.Step(ctx, parent.ID, 64); err != nil {
		t.Fatalf("step: %v", err)
	}
	parent, err = c.Info(ctx, parent.ID)
	if err != nil {
		t.Fatalf("info: %v", err)
	}

	const workers, perWorker = 8, 4
	var wg sync.WaitGroup
	errs := make(chan error, workers*perWorker)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < perWorker; k++ {
				fk, err := c.Fork(ctx, parent.ID)
				if err != nil {
					errs <- err
					continue
				}
				if fk.Digest != parent.Digest || fk.Cycle != parent.Cycle || !fk.Cow {
					errs <- &kclient.APIError{Status: 0, Message: "fork parity violation: " + fk.Digest}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("concurrent fork: %v", err)
	}
	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	if m.Forks != workers*perWorker || m.LazyForks != workers*perWorker {
		t.Fatalf("metrics forks/lazy = %d/%d, want %d/%d", m.Forks, m.LazyForks, workers*perWorker, workers*perWorker)
	}
}

// TestExportImportRoundTrip moves a session between two daemons:
// export-with-release atomically captures state and retires the source
// copy, import admits it only through the digest+cycle equality gate, and
// the migrated session keeps simulating cycle-exactly.
func TestExportImportRoundTrip(t *testing.T) {
	ctx := context.Background()
	_, cA := newTestDaemon(t, server.Config{})
	_, cB := newTestDaemon(t, server.Config{})

	info, err := cA.Create(ctx, server.CreateRequest{Catalog: "collatz"})
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	if _, err := cA.Step(ctx, info.ID, 70); err != nil {
		t.Fatalf("step: %v", err)
	}
	exp, err := cA.Export(ctx, info.ID, true)
	if err != nil {
		t.Fatalf("export: %v", err)
	}
	if !exp.Released || exp.Cycle != 70 {
		t.Fatalf("export = released=%v cycle=%d, want released=true cycle=70", exp.Released, exp.Cycle)
	}
	// The source copy is gone: exactly zero owners until the import admits.
	if _, err := cA.Info(ctx, info.ID); apiStatus(t, err) != http.StatusNotFound {
		t.Fatalf("source session still answers after release: %v", err)
	}

	imp, err := cB.Import(ctx, server.ImportRequest{
		ID: exp.ID, Source: exp.Source, Catalog: exp.Catalog, Config: exp.Config,
		Cycle: exp.Cycle, Digest: exp.Digest, Snapshot: exp.Snapshot,
	})
	if err != nil {
		t.Fatalf("import: %v", err)
	}
	if imp.Digest != exp.Digest || imp.Cycle != exp.Cycle {
		t.Fatalf("import = %s@%d, want exported %s@%d", imp.Digest, imp.Cycle, exp.Digest, exp.Cycle)
	}
	// Re-importing the same payload must refuse: the session is live here.
	if _, err := cB.Import(ctx, server.ImportRequest{
		ID: exp.ID, Source: exp.Source, Catalog: exp.Catalog, Config: exp.Config,
		Cycle: exp.Cycle, Digest: exp.Digest, Snapshot: exp.Snapshot,
	}); apiStatus(t, err) != http.StatusConflict {
		t.Fatalf("duplicate import: %v, want 409", err)
	}
	// The migrated session continues cycle-exactly.
	if _, err := cB.Step(ctx, exp.ID, 30); err != nil {
		t.Fatalf("step after import: %v", err)
	}
	got, err := cB.Info(ctx, exp.ID)
	if err != nil {
		t.Fatalf("info: %v", err)
	}
	if want := referenceDigest(t, "collatz", 100); got.Digest != want {
		t.Fatalf("post-migration digest = %s, want reference %s", got.Digest, want)
	}
}

// TestImportRejectsDigestMismatch: a transfer promising a digest the
// restored engine does not reproduce must be refused with 422 and leave no
// session behind.
func TestImportRejectsDigestMismatch(t *testing.T) {
	ctx := context.Background()
	_, cA := newTestDaemon(t, server.Config{})
	_, cB := newTestDaemon(t, server.Config{})

	info, err := cA.Create(ctx, server.CreateRequest{Catalog: "collatz"})
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	if _, err := cA.Step(ctx, info.ID, 25); err != nil {
		t.Fatalf("step: %v", err)
	}
	exp, err := cA.Export(ctx, info.ID, false)
	if err != nil {
		t.Fatalf("export: %v", err)
	}
	req := server.ImportRequest{
		ID: exp.ID, Source: exp.Source, Catalog: exp.Catalog, Config: exp.Config,
		Cycle: exp.Cycle, Digest: "deadbeefdeadbeef", Snapshot: exp.Snapshot,
	}
	if _, err := cB.Import(ctx, req); apiStatus(t, err) != http.StatusUnprocessableEntity {
		t.Fatalf("lying import: %v, want 422", err)
	}
	// A lying cycle count must equally fail the gate.
	req.Digest = exp.Digest
	req.Cycle = exp.Cycle + 1
	if _, err := cB.Import(ctx, req); apiStatus(t, err) != http.StatusUnprocessableEntity {
		t.Fatalf("lying cycle import: %v, want 422", err)
	}
	list, err := cB.List(ctx)
	if err != nil {
		t.Fatalf("list: %v", err)
	}
	if len(list) != 0 {
		t.Fatalf("rejected imports left %d sessions live", len(list))
	}
	// The non-released source is untouched throughout.
	if _, err := cA.Step(ctx, info.ID, 1); err != nil {
		t.Fatalf("source session damaged by export: %v", err)
	}
}

// TestExportReleaseCheckpointFault: when the release-side durable
// checkpoint write fails, the export must fail closed — 500, nothing
// released, the session still live and steppable on the source.
func TestExportReleaseCheckpointFault(t *testing.T) {
	ctx := context.Background()
	inj := faultinj.New(7, faultinj.Rule{Op: "fs.write", Nth: 1, Kind: faultinj.Fail})
	_, c := newTestDaemon(t, server.Config{StoreDir: t.TempDir(), Faults: inj})

	info, err := c.Create(ctx, server.CreateRequest{Catalog: "collatz"})
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	if _, err := c.Step(ctx, info.ID, 12); err != nil {
		t.Fatalf("step: %v", err)
	}
	if _, err := c.Export(ctx, info.ID, true); apiStatus(t, err) != http.StatusInternalServerError {
		t.Fatalf("export over failing store: %v, want 500", err)
	}
	// Fault fired exactly once; the session survived and the retry works.
	if _, err := c.Step(ctx, info.ID, 1); err != nil {
		t.Fatalf("session lost after failed release: %v", err)
	}
	exp, err := c.Export(ctx, info.ID, true)
	if err != nil {
		t.Fatalf("export retry: %v", err)
	}
	if !exp.Released || exp.Cycle != 13 {
		t.Fatalf("export retry = released=%v cycle=%d, want released=true cycle=13", exp.Released, exp.Cycle)
	}
}

// TestMigrationSourceDeathRehomesOnce models the node-killed-mid-transfer
// story: the source released (durable state in the shared store), the
// import never landed, and the id must come back exactly once — via
// transparent resurrection on the surviving node — at the released digest.
func TestMigrationSourceDeathRehomesOnce(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	_, cA := newTestDaemon(t, server.Config{StoreDir: dir})
	_, cB := newTestDaemon(t, server.Config{StoreDir: dir})

	info, err := cA.Create(ctx, server.CreateRequest{Catalog: "collatz"})
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	if _, err := cA.Step(ctx, info.ID, 33); err != nil {
		t.Fatalf("step: %v", err)
	}
	exp, err := cA.Export(ctx, info.ID, true)
	if err != nil {
		t.Fatalf("export: %v", err)
	}
	// The "transfer" dies here: the exported payload is never imported and
	// the source node is treated as lost. The shared store now holds the
	// only copy.
	listA, err := cA.List(ctx)
	if err != nil {
		t.Fatalf("list A: %v", err)
	}
	if len(listA) != 0 {
		t.Fatalf("source still owns %d sessions after release", len(listA))
	}

	// Survivor B resurrects transparently on first lookup, at the exact
	// digest and cycle the source released.
	got, err := cB.Info(ctx, info.ID)
	if err != nil {
		t.Fatalf("info on survivor: %v", err)
	}
	if !got.Restored || got.Digest != exp.Digest || got.Cycle != exp.Cycle {
		t.Fatalf("rehomed = restored=%v %s@%d, want restored=true %s@%d",
			got.Restored, got.Digest, got.Cycle, exp.Digest, exp.Cycle)
	}
	// Exactly one live owner: a late import of the in-flight payload must
	// be refused, not create a second copy.
	if _, err := cB.Import(ctx, server.ImportRequest{
		ID: exp.ID, Source: exp.Source, Catalog: exp.Catalog, Config: exp.Config,
		Cycle: exp.Cycle, Digest: exp.Digest, Snapshot: exp.Snapshot,
	}); apiStatus(t, err) != http.StatusConflict {
		t.Fatalf("late import after rehome: %v, want 409", err)
	}
}

// TestFleetLeakFree forks, fails exports, and rejects imports under fault
// injection, then checks nothing leaked: no live native subprocesses and
// the goroutine count settles back to its pre-daemon baseline.
func TestFleetLeakFree(t *testing.T) {
	ctx := context.Background()
	runtime.GC()
	baseline := runtime.NumGoroutine()

	// The 9th write is the release checkpoint's meta.json: each of the four
	// forks below durably checkpoints at creation (meta + snapshot = writes
	// 1..8), and the faulted write must land on the export-release path.
	inj := faultinj.New(11, faultinj.Rule{Op: "fs.write", Nth: 9, Kind: faultinj.Fail})
	srv, err := server.New(server.Config{StoreDir: t.TempDir(), Faults: inj, MaxSessions: 32})
	if err != nil {
		t.Fatalf("server.New: %v", err)
	}
	ts := httptest.NewServer(srv.Handler())
	c := kclient.New(ts.URL)

	parent, err := c.Create(ctx, server.CreateRequest{Catalog: "collatz"})
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	if _, err := c.Step(ctx, parent.ID, 20); err != nil {
		t.Fatalf("step: %v", err)
	}
	ids := []string{parent.ID}
	for i := 0; i < 4; i++ {
		fk, err := c.Fork(ctx, parent.ID)
		if err != nil {
			t.Fatalf("fork %d: %v", i, err)
		}
		ids = append(ids, fk.ID)
	}
	// Materialize one fork, leave the rest lazy so teardown covers both.
	if _, err := c.Step(ctx, ids[1], 5); err != nil {
		t.Fatalf("materialize fork: %v", err)
	}
	// Exercise the admit-failure paths: an export whose release checkpoint
	// hits the injected write fault, and an import refused by the gate.
	exp, err := c.Export(ctx, ids[1], false)
	if err != nil {
		t.Fatalf("export: %v", err)
	}
	if _, err := c.Import(ctx, server.ImportRequest{
		ID: "imposter", Source: exp.Source, Catalog: exp.Catalog, Config: exp.Config,
		Cycle: exp.Cycle, Digest: "0000000000000000", Snapshot: exp.Snapshot,
	}); apiStatus(t, err) != http.StatusUnprocessableEntity {
		t.Fatalf("gated import: %v, want 422", err)
	}
	if _, err := c.Export(ctx, parent.ID, true); apiStatus(t, err) != http.StatusInternalServerError {
		t.Fatalf("faulted release: %v, want 500", err)
	}
	for _, id := range ids {
		if err := c.Delete(ctx, id); err != nil {
			t.Fatalf("delete %s: %v", id, err)
		}
	}

	ts.Close()
	if err := srv.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if n := native.Live(); n != 0 {
		t.Fatalf("%d native subprocesses still live after teardown", n)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if runtime.NumGoroutine() <= baseline+3 || time.Now().After(deadline) {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > baseline+3 {
		buf := make([]byte, 1<<16)
		t.Fatalf("goroutines leaked: %d > baseline %d\n%s", n, baseline, buf[:runtime.Stack(buf, true)])
	}
}

// TestIdemKeyReuseDifferentBody: reusing an Idempotency-Key with a changed
// payload must be refused with 422, never answered with the cached
// response; the honest retry replays without re-executing.
func TestIdemKeyReuseDifferentBody(t *testing.T) {
	ctx := context.Background()
	srv, err := server.New(server.Config{})
	if err != nil {
		t.Fatalf("server.New: %v", err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	c := kclient.New(ts.URL)

	info, err := c.Create(ctx, server.CreateRequest{Catalog: "collatz"})
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	stepURL := ts.URL + "/v1/sessions/" + info.ID + "/step"
	post := func(body string) *http.Response {
		t.Helper()
		req, _ := http.NewRequest(http.MethodPost, stepURL, bytes.NewBufferString(body))
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("Idempotency-Key", "fleet-test-key")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("POST step: %v", err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}

	if resp := post(`{"cycles":5}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("first step = %d, want 200", resp.StatusCode)
	}
	// Honest retry: same key, same body — replayed, not re-executed.
	resp := post(`{"cycles":5}`)
	if resp.StatusCode != http.StatusOK || resp.Header.Get("Idempotency-Replayed") != "true" {
		t.Fatalf("retry = %d replayed=%q, want 200 replayed=true",
			resp.StatusCode, resp.Header.Get("Idempotency-Replayed"))
	}
	got, err := c.Info(ctx, info.ID)
	if err != nil {
		t.Fatalf("info: %v", err)
	}
	if got.Cycle != 5 {
		t.Fatalf("cycle after replayed retry = %d, want 5 (step must not re-execute)", got.Cycle)
	}
	// Key reuse with a different payload is a client bug: refuse, don't
	// replay a response computed for other inputs.
	if resp := post(`{"cycles":7}`); resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("key reuse with different body = %d, want 422", resp.StatusCode)
	}
	if got, _ = c.Info(ctx, info.ID); got.Cycle != 5 {
		t.Fatalf("cycle after refused reuse = %d, want 5", got.Cycle)
	}
}
