package server_test

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"cuttlego/internal/bench"
	"cuttlego/internal/cuttlesim"
	"cuttlego/internal/kclient"
	"cuttlego/internal/server"
	"cuttlego/internal/sim"
)

// gcdSrc is a self-driving design with a natural terminal condition, handy
// for conditional-breakpoint tests.
const gcdSrc = `design gcd

register a    : bits<16> init 16'd1071
register b    : bits<16> init 16'd462
register done : bits<1>

rule swap:
    guard done.rd0() == 1'd0
    let va := a.rd0()
    let vb := b.rd0()
    guard va <u vb
    a.wr0(vb)
    b.wr0(va)

rule subtract:
    guard done.rd0() == 1'd0
    let va := a.rd1()
    let vb := b.rd1()
    if (vb == 16'd0) | (va == vb) {
        done.wr0(1'd1)
    } else {
        if vb <u va {
            a.wr1(va - vb)
        } else {
            pass
        }
    }

schedule: swap subtract
`

func newTestDaemon(t *testing.T, cfg server.Config) (*server.Server, *kclient.Client) {
	t.Helper()
	srv, err := server.New(cfg)
	if err != nil {
		t.Fatalf("server.New: %v", err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(func() { _ = srv.Close() })
	return srv, kclient.New(ts.URL)
}

// referenceDigest runs a catalogue design in-process for n cycles on the
// daemon's default engine and returns the hex state digest.
func referenceDigest(t *testing.T, catalog string, n uint64) string {
	t.Helper()
	bm, ok := bench.Lookup(catalog)
	if !ok {
		t.Fatalf("no catalogue design %q", catalog)
	}
	inst := bm.New()
	eng, err := cuttlesim.New(inst.Design, cuttlesim.Options{
		Level: cuttlesim.LStatic, Backend: cuttlesim.Closure, Profile: true,
	})
	if err != nil {
		t.Fatalf("cuttlesim.New: %v", err)
	}
	if ran := sim.Run(eng, inst.Bench, n); ran != n {
		t.Fatalf("reference run stopped at %d of %d cycles", ran, n)
	}
	return fmt.Sprintf("%016x", sim.StateDigest(eng))
}

func TestCreateStepMatchesInProcess(t *testing.T) {
	_, c := newTestDaemon(t, server.Config{})
	ctx := context.Background()
	info, err := c.Create(ctx, server.CreateRequest{Catalog: "collatz"})
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	if !info.Durable {
		t.Fatalf("collatz session should be durable: %+v", info)
	}
	step, err := c.Step(ctx, info.ID, 500)
	if err != nil {
		t.Fatalf("step: %v", err)
	}
	if step.Ran != 500 || step.Cycle != 500 || step.Stopped != "" {
		t.Fatalf("step = %+v, want 500 clean cycles", step)
	}
	got, err := c.Info(ctx, info.ID)
	if err != nil {
		t.Fatalf("info: %v", err)
	}
	if want := referenceDigest(t, "collatz", 500); got.Digest != want {
		t.Fatalf("remote digest %s != in-process %s", got.Digest, want)
	}
}

// TestSessionDurability is the acceptance end-to-end: create → step →
// checkpoint → daemon "restart" (new Server over the same store dir) →
// restore → step, with a final digest identical to an uninterrupted
// in-process run.
func TestSessionDurability(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()

	srvA, cA := newTestDaemon(t, server.Config{StoreDir: dir})
	info, err := cA.Create(ctx, server.CreateRequest{Catalog: "collatz"})
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	if _, err := cA.Step(ctx, info.ID, 100); err != nil {
		t.Fatalf("step: %v", err)
	}
	ckpt, err := cA.Checkpoint(ctx, info.ID)
	if err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	if ckpt.Checkpoint != "c100" || ckpt.Cycle != 100 {
		t.Fatalf("checkpoint = %+v, want c100", ckpt)
	}
	if err := srvA.Close(); err != nil {
		t.Fatalf("close daemon A: %v", err)
	}

	_, cB := newTestDaemon(t, server.Config{StoreDir: dir})
	restored, err := cB.Resurrect(ctx, info.ID, ckpt.Checkpoint)
	if err != nil {
		t.Fatalf("resurrect: %v", err)
	}
	if restored.ID != info.ID || restored.Cycle != 100 || !restored.Restored {
		t.Fatalf("resurrected = %+v, want id %s at cycle 100", restored, info.ID)
	}
	if restored.Digest != ckpt.Digest {
		t.Fatalf("resurrected digest %s != checkpoint digest %s", restored.Digest, ckpt.Digest)
	}
	if _, err := cB.Step(ctx, info.ID, 60); err != nil {
		t.Fatalf("step after restore: %v", err)
	}
	got, err := cB.Info(ctx, info.ID)
	if err != nil {
		t.Fatalf("info: %v", err)
	}
	if want := referenceDigest(t, "collatz", 160); got.Digest != want {
		t.Fatalf("post-restore digest %s != uninterrupted in-process %s", got.Digest, want)
	}
}

// TestLazyResurrect drives a stored session by id without an explicit
// resurrect call: lookup transparently reloads it.
func TestLazyResurrect(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	srvA, cA := newTestDaemon(t, server.Config{StoreDir: dir})
	info, err := cA.Create(ctx, server.CreateRequest{Catalog: "fir"})
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	if _, err := cA.Step(ctx, info.ID, 200); err != nil {
		t.Fatalf("step: %v", err)
	}
	if _, err := cA.Checkpoint(ctx, info.ID); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	if err := srvA.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	_, cB := newTestDaemon(t, server.Config{StoreDir: dir})
	step, err := cB.Step(ctx, info.ID, 50)
	if err != nil {
		t.Fatalf("step on resurrected id: %v", err)
	}
	if step.Cycle != 250 {
		t.Fatalf("cycle = %d, want 250", step.Cycle)
	}
	got, err := cB.Info(ctx, info.ID)
	if err != nil {
		t.Fatalf("info: %v", err)
	}
	if want := referenceDigest(t, "fir", 250); got.Digest != want {
		t.Fatalf("digest %s != in-process %s", got.Digest, want)
	}
}

// TestRestartDoesNotReuseStoredIDs: a daemon restarted over an existing
// store must seed its id counter past every stored session — otherwise the
// first session it creates reuses a stored id, its checkpoints clobber the
// old session's durable state, and DELETE destroys the wrong session.
func TestRestartDoesNotReuseStoredIDs(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	srvA, cA := newTestDaemon(t, server.Config{StoreDir: dir})
	old, err := cA.Create(ctx, server.CreateRequest{Catalog: "collatz"})
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	if _, err := cA.Step(ctx, old.ID, 100); err != nil {
		t.Fatalf("step: %v", err)
	}
	if _, err := cA.Checkpoint(ctx, old.ID); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	if err := srvA.Close(); err != nil {
		t.Fatalf("close daemon A: %v", err)
	}

	_, cB := newTestDaemon(t, server.Config{StoreDir: dir})
	fresh, err := cB.Create(ctx, server.CreateRequest{Catalog: "fir"})
	if err != nil {
		t.Fatalf("create after restart: %v", err)
	}
	if fresh.ID == old.ID {
		t.Fatalf("restarted daemon minted id %s colliding with stored session", fresh.ID)
	}
	// Checkpointing the new session must not disturb the old one's store.
	if _, err := cB.Checkpoint(ctx, fresh.ID); err != nil {
		t.Fatalf("checkpoint new session: %v", err)
	}
	restored, err := cB.Resurrect(ctx, old.ID, "")
	if err != nil {
		t.Fatalf("resurrect stored session: %v", err)
	}
	if restored.Cycle != 100 || restored.Design != old.Design {
		t.Fatalf("resurrected = %+v, want design %s at cycle 100", restored, old.Design)
	}
}

// TestConcurrentLazyResurrect hammers one stored id from many goroutines at
// once: the resurrection race must admit exactly one rebuilt session, so
// every step lands on that winner and none of its progress is discarded by
// a losing duplicate overwriting the table entry.
func TestConcurrentLazyResurrect(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	srvA, cA := newTestDaemon(t, server.Config{StoreDir: dir})
	info, err := cA.Create(ctx, server.CreateRequest{Catalog: "collatz"})
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	if _, err := cA.Step(ctx, info.ID, 100); err != nil {
		t.Fatalf("step: %v", err)
	}
	if _, err := cA.Checkpoint(ctx, info.ID); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	if err := srvA.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	_, cB := newTestDaemon(t, server.Config{StoreDir: dir})
	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := cB.Step(ctx, info.ID, 10); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("concurrent step: %v", err)
	}
	got, err := cB.Info(ctx, info.ID)
	if err != nil {
		t.Fatalf("info: %v", err)
	}
	if want := uint64(100 + workers*10); got.Cycle != want {
		t.Fatalf("cycle = %d, want %d (steps landed on a discarded duplicate session)", got.Cycle, want)
	}
}

// TestConcurrentSessions is the acceptance concurrency run: at least 8
// parallel sessions spanning the engine matrix, each stepped in chunks and
// compared against its in-process reference (run under -race in CI).
func TestConcurrentSessions(t *testing.T) {
	_, c := newTestDaemon(t, server.Config{})
	ctx := context.Background()
	configs := []server.CreateRequest{
		{Catalog: "collatz"},
		{Catalog: "collatz", Level: "activity"},
		{Catalog: "collatz", Backend: "bytecode"},
		{Catalog: "collatz", Engine: "interp"},
		{Catalog: "collatz", Engine: "rtlsim"},
		{Catalog: "fir"},
		{Catalog: "fir", Engine: "rtlsim", Optimize: true},
		{Catalog: "fft"},
		{Catalog: "fft", Engine: "interp"},
		{Catalog: "idle"},
		{Catalog: "fft", Workers: 4},
		{Catalog: "fft", Engine: "rtlsim", Optimize: true, Workers: 4},
	}
	const total = 240
	want := map[string]string{}
	for _, req := range configs {
		if _, ok := want[req.Catalog]; !ok {
			want[req.Catalog] = referenceDigest(t, req.Catalog, total)
		}
	}
	var wg sync.WaitGroup
	errs := make(chan error, len(configs))
	for i, req := range configs {
		wg.Add(1)
		go func(i int, req server.CreateRequest) {
			defer wg.Done()
			info, err := c.Create(ctx, req)
			if err != nil {
				errs <- fmt.Errorf("session %d create: %w", i, err)
				return
			}
			for done := uint64(0); done < total; {
				chunk := uint64(60)
				if total-done < chunk {
					chunk = total - done
				}
				step, err := c.Step(ctx, info.ID, chunk)
				if err != nil {
					errs <- fmt.Errorf("session %d step: %w", i, err)
					return
				}
				done += step.Ran
			}
			got, err := c.Info(ctx, info.ID)
			if err != nil {
				errs <- fmt.Errorf("session %d info: %w", i, err)
				return
			}
			if got.Cycle != total || got.Digest != want[req.Catalog] {
				errs <- fmt.Errorf("session %d (%+v): cycle %d digest %s, want %d %s",
					i, req, got.Cycle, got.Digest, total, want[req.Catalog])
			}
		}(i, req)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	sessions, err := c.List(ctx)
	if err != nil {
		t.Fatalf("list: %v", err)
	}
	if len(sessions) != len(configs) {
		t.Fatalf("listed %d sessions, want %d", len(sessions), len(configs))
	}
}

// TestParallelEngineConfig drives the workers knob over the wire: valid
// widths build pooled engines whose digests match the sequential
// reference, and option combinations the parallel engines cannot honor
// are rejected at create time.
func TestParallelEngineConfig(t *testing.T) {
	_, c := newTestDaemon(t, server.Config{})
	ctx := context.Background()
	want := referenceDigest(t, "fft", 100)
	for _, req := range []server.CreateRequest{
		{Catalog: "fft", Workers: 2},
		{Catalog: "fft", Backend: "bytecode", Workers: 4},
		{Catalog: "fft", Engine: "rtlsim", Workers: 4},
	} {
		info, err := c.Create(ctx, req)
		if err != nil {
			t.Fatalf("create %+v: %v", req, err)
		}
		if !strings.Contains(info.Engine, fmt.Sprintf("w%d", req.Workers)) {
			t.Errorf("engine string %q does not record the pool width", info.Engine)
		}
		if _, err := c.Step(ctx, info.ID, 100); err != nil {
			t.Fatalf("step %+v: %v", req, err)
		}
		got, err := c.Info(ctx, info.ID)
		if err != nil {
			t.Fatal(err)
		}
		if got.Digest != want {
			t.Errorf("%+v: digest %s, want %s", req, got.Digest, want)
		}
		if err := c.Delete(ctx, info.ID); err != nil {
			t.Fatal(err)
		}
	}
	for _, req := range []server.CreateRequest{
		{Catalog: "fft", Engine: "interp", Workers: 2},
		{Catalog: "fft", Level: "naive", Workers: 2},
		{Catalog: "fft", Engine: "rtlsim", Backend: "switch", Workers: 2},
		{Catalog: "fft", Workers: -1},
	} {
		if _, err := c.Create(ctx, req); err == nil {
			t.Errorf("create accepted %+v", req)
		}
	}
}

// TestRemoteConditionalBreak attaches a conditional breakpoint through the
// remote session path and checks the run stops on it.
func TestRemoteConditionalBreak(t *testing.T) {
	_, c := newTestDaemon(t, server.Config{})
	ctx := context.Background()
	info, err := c.Create(ctx, server.CreateRequest{Source: gcdSrc})
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	if err := c.Break(ctx, info.ID, server.BreakRequest{Cond: "done.rd0() == 1'd1"}); err != nil {
		t.Fatalf("break: %v", err)
	}
	step, err := c.Step(ctx, info.ID, 10000)
	if err != nil {
		t.Fatalf("step: %v", err)
	}
	if step.Ran == 0 || step.Ran >= 10000 || !strings.Contains(step.Stopped, "done.rd0()") {
		t.Fatalf("step = %+v, want an early conditional stop", step)
	}
	regs, err := c.Regs(ctx, info.ID, server.RegsRequest{Get: []string{"a", "done"}})
	if err != nil {
		t.Fatalf("regs: %v", err)
	}
	if regs.Values["done"].Hex != "1" {
		t.Fatalf("done = %+v, want 1", regs.Values["done"])
	}
	// gcd(1071, 462) = 21.
	if regs.Values["a"].Hex != "15" {
		t.Fatalf("a = %+v, want 0x15", regs.Values["a"])
	}
	// Clearing the breakpoint lets the run complete.
	if err := c.Break(ctx, info.ID, server.BreakRequest{Clear: true}); err != nil {
		t.Fatalf("clear: %v", err)
	}
	step, err = c.Step(ctx, info.ID, 100)
	if err != nil || step.Ran != 100 || step.Stopped != "" {
		t.Fatalf("step after clear = %+v, %v", step, err)
	}
}

func TestRegsPokeRoundTrip(t *testing.T) {
	_, c := newTestDaemon(t, server.Config{})
	ctx := context.Background()
	info, err := c.Create(ctx, server.CreateRequest{Source: gcdSrc})
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	// Poke a fresh problem into the registers and let it run to the fixpoint.
	_, err = c.Regs(ctx, info.ID, server.RegsRequest{Set: map[string]server.RegValue{
		"a": {Width: 16, Hex: "30"}, // 48
		"b": {Width: 16, Hex: "12"}, // 18
	}})
	if err != nil {
		t.Fatalf("poke: %v", err)
	}
	if _, err := c.Step(ctx, info.ID, 200); err != nil {
		t.Fatalf("step: %v", err)
	}
	regs, err := c.Regs(ctx, info.ID, server.RegsRequest{All: true})
	if err != nil {
		t.Fatalf("peek: %v", err)
	}
	if regs.Values["a"].Hex != "6" || regs.Values["done"].Hex != "1" {
		t.Fatalf("gcd(48, 18): regs = %+v, want a=6 done=1", regs.Values)
	}
}

func TestProfileEndpoint(t *testing.T) {
	_, c := newTestDaemon(t, server.Config{})
	ctx := context.Background()
	info, err := c.Create(ctx, server.CreateRequest{Catalog: "collatz"})
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	if _, err := c.Step(ctx, info.ID, 100); err != nil {
		t.Fatalf("step: %v", err)
	}
	prof, err := c.Profile(ctx, info.ID)
	if err != nil {
		t.Fatalf("profile: %v", err)
	}
	if prof.Cycle != 100 || len(prof.Rules) == 0 {
		t.Fatalf("profile = %+v, want rules at cycle 100", prof)
	}
	var attempts uint64
	for _, r := range prof.Rules {
		attempts += r.Attempts
	}
	if attempts == 0 {
		t.Fatalf("profile shows zero attempts: %+v", prof.Rules)
	}
}

func TestForkAndReverse(t *testing.T) {
	_, c := newTestDaemon(t, server.Config{})
	ctx := context.Background()
	info, err := c.Create(ctx, server.CreateRequest{Catalog: "collatz"})
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	if _, err := c.Step(ctx, info.ID, 100); err != nil {
		t.Fatalf("step: %v", err)
	}
	base, err := c.Info(ctx, info.ID)
	if err != nil {
		t.Fatalf("info: %v", err)
	}
	fork, err := c.Fork(ctx, info.ID)
	if err != nil {
		t.Fatalf("fork: %v", err)
	}
	if fork.ID == info.ID || fork.Cycle != 100 || fork.Digest != base.Digest {
		t.Fatalf("fork = %+v, want a distinct session matching %+v", fork, base)
	}
	// The fork advances independently of its parent.
	if _, err := c.Step(ctx, fork.ID, 50); err != nil {
		t.Fatalf("step fork: %v", err)
	}
	parent, err := c.Info(ctx, info.ID)
	if err != nil || parent.Cycle != 100 {
		t.Fatalf("parent moved: %+v, %v", parent, err)
	}
	// Reverse the parent 30 cycles, then re-run: same digest as before.
	back, err := c.Reverse(ctx, info.ID, 30)
	if err != nil {
		t.Fatalf("reverse: %v", err)
	}
	if back.Cycle != 70 {
		t.Fatalf("reverse landed at %d, want 70", back.Cycle)
	}
	if _, err := c.Step(ctx, info.ID, 30); err != nil {
		t.Fatalf("re-step: %v", err)
	}
	again, err := c.Info(ctx, info.ID)
	if err != nil {
		t.Fatalf("info: %v", err)
	}
	if again.Digest != base.Digest {
		t.Fatalf("replayed digest %s != original %s", again.Digest, base.Digest)
	}
}

func TestTraceStreams(t *testing.T) {
	_, c := newTestDaemon(t, server.Config{})
	ctx := context.Background()
	info, err := c.Create(ctx, server.CreateRequest{Source: gcdSrc})
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	var events []server.TraceEvent
	err = c.TraceEvents(ctx, info.ID, 20, func(ev server.TraceEvent) error {
		events = append(events, ev)
		return nil
	})
	if err != nil {
		t.Fatalf("trace events: %v", err)
	}
	if len(events) != 20 {
		t.Fatalf("got %d events, want 20", len(events))
	}
	for i, ev := range events {
		if ev.Cycle != uint64(i+1) {
			t.Fatalf("event %d at cycle %d, want %d", i, ev.Cycle, i+1)
		}
	}
	if len(events[0].Fired) == 0 || len(events[0].Changed) == 0 {
		t.Fatalf("first event should fire rules and change registers: %+v", events[0])
	}
	// VCD stream: header plus one timestep per value-changing cycle (use a
	// design that never quiesces, so every cycle changes something).
	busy, err := c.Create(ctx, server.CreateRequest{Catalog: "collatz"})
	if err != nil {
		t.Fatalf("create collatz: %v", err)
	}
	body, err := c.Trace(ctx, busy.ID, 10, "vcd")
	if err != nil {
		t.Fatalf("trace vcd: %v", err)
	}
	defer body.Close()
	data, err := io.ReadAll(body)
	if err != nil {
		t.Fatalf("read vcd: %v", err)
	}
	text := string(data)
	if !strings.Contains(text, "$enddefinitions") {
		t.Fatalf("vcd stream missing header:\n%s", text)
	}
	steps := 0
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, "#") {
			steps++
		}
	}
	if steps < 10 {
		t.Fatalf("vcd stream has %d timesteps, want >= 10:\n%s", steps, text)
	}
	// Traces advance their sessions like any other step.
	got, err := c.Info(ctx, info.ID)
	if err != nil || got.Cycle != 20 {
		t.Fatalf("cycle after events trace = %+v, %v; want 20", got, err)
	}
	got, err = c.Info(ctx, busy.ID)
	if err != nil || got.Cycle != 10 {
		t.Fatalf("cycle after vcd trace = %+v, %v; want 10", got, err)
	}
}

func TestEvictionAndTransparentReload(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	_, c := newTestDaemon(t, server.Config{StoreDir: dir, MaxSessions: 2})
	var ids []string
	for i := 0; i < 3; i++ {
		info, err := c.Create(ctx, server.CreateRequest{Catalog: "collatz"})
		if err != nil {
			t.Fatalf("create %d: %v", i, err)
		}
		if _, err := c.Step(ctx, info.ID, uint64(10*(i+1))); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		ids = append(ids, info.ID)
	}
	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	if m.Sessions != 2 || m.Evictions == 0 {
		t.Fatalf("metrics = %+v, want 2 live sessions and an eviction", m)
	}
	// Every session, evicted or not, is still addressable at its cycle.
	for i, id := range ids {
		got, err := c.Info(ctx, id)
		if err != nil {
			t.Fatalf("info %s: %v", id, err)
		}
		if want := uint64(10 * (i + 1)); got.Cycle != want {
			t.Fatalf("session %s at cycle %d, want %d", id, got.Cycle, want)
		}
	}
}

func TestNotDurableIs409(t *testing.T) {
	_, c := newTestDaemon(t, server.Config{StoreDir: t.TempDir()})
	ctx := context.Background()
	info, err := c.Create(ctx, server.CreateRequest{Catalog: "rv32i"})
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	if info.Durable {
		t.Fatalf("rv32i carries a testbench; session must not be durable: %+v", info)
	}
	for name, call := range map[string]func() error{
		"checkpoint": func() error { _, err := c.Checkpoint(ctx, info.ID); return err },
		"fork":       func() error { _, err := c.Fork(ctx, info.ID); return err },
		"reverse":    func() error { _, err := c.Reverse(ctx, info.ID, 1); return err },
	} {
		err := call()
		var apiErr *kclient.APIError
		if !errAs(err, &apiErr) || apiErr.Status != http.StatusConflict {
			t.Errorf("%s on non-durable session: got %v, want 409", name, err)
		}
	}
	// It still steps fine.
	if _, err := c.Step(ctx, info.ID, 100); err != nil {
		t.Fatalf("step: %v", err)
	}
}

func errAs(err error, target any) bool {
	if err == nil {
		return false
	}
	switch t := target.(type) {
	case **kclient.APIError:
		e, ok := err.(*kclient.APIError)
		if ok {
			*t = e
		}
		return ok
	}
	return false
}

// TestHTTPStatusContract pins the explicit 4xx mapping: client mistakes
// never surface as 500s.
func TestHTTPStatusContract(t *testing.T) {
	srv, err := server.New(server.Config{MaxBody: 2048})
	if err != nil {
		t.Fatalf("server.New: %v", err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	h := srv.Handler()

	post := func(path, body string) *httptest.ResponseRecorder {
		req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, req)
		return rr
	}
	get := func(path string) *httptest.ResponseRecorder {
		req := httptest.NewRequest(http.MethodGet, path, nil)
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, req)
		return rr
	}

	// One live session to exercise per-session validation.
	rr := post("/v1/sessions", `{"catalog":"collatz"}`)
	if rr.Code != http.StatusCreated {
		t.Fatalf("create: %d %s", rr.Code, rr.Body)
	}
	var info server.SessionInfo
	if err := json.Unmarshal(rr.Body.Bytes(), &info); err != nil {
		t.Fatalf("create body: %v", err)
	}

	cases := []struct {
		name string
		run  func() *httptest.ResponseRecorder
		want int
	}{
		{"malformed json", func() *httptest.ResponseRecorder {
			return post("/v1/sessions", `{"catalog":`)
		}, http.StatusBadRequest},
		{"unknown field", func() *httptest.ResponseRecorder {
			return post("/v1/sessions", `{"catalogue":"collatz"}`)
		}, http.StatusBadRequest},
		{"neither source nor catalog", func() *httptest.ResponseRecorder {
			return post("/v1/sessions", `{}`)
		}, http.StatusBadRequest},
		{"both source and catalog", func() *httptest.ResponseRecorder {
			return post("/v1/sessions", `{"source":"design x","catalog":"collatz"}`)
		}, http.StatusBadRequest},
		{"malformed design", func() *httptest.ResponseRecorder {
			return post("/v1/sessions", `{"source":"design broken\nregister r bits<4>\n"}`)
		}, http.StatusBadRequest},
		{"unknown catalogue name", func() *httptest.ResponseRecorder {
			return post("/v1/sessions", `{"catalog":"nonesuch"}`)
		}, http.StatusBadRequest},
		{"unknown engine", func() *httptest.ResponseRecorder {
			return post("/v1/sessions", `{"catalog":"collatz","engine":"verilator"}`)
		}, http.StatusBadRequest},
		{"unknown level", func() *httptest.ResponseRecorder {
			return post("/v1/sessions", `{"catalog":"collatz","level":"ludicrous"}`)
		}, http.StatusBadRequest},
		{"oversized body", func() *httptest.ResponseRecorder {
			return post("/v1/sessions", `{"source":"`+strings.Repeat("x", 4096)+`"}`)
		}, http.StatusRequestEntityTooLarge},
		{"unknown session info", func() *httptest.ResponseRecorder {
			return get("/v1/sessions/nonesuch")
		}, http.StatusNotFound},
		{"unknown session step", func() *httptest.ResponseRecorder {
			return post("/v1/sessions/nonesuch/step", `{"cycles":1}`)
		}, http.StatusNotFound},
		{"unknown session delete", func() *httptest.ResponseRecorder {
			req := httptest.NewRequest(http.MethodDelete, "/v1/sessions/nonesuch", nil)
			rr := httptest.NewRecorder()
			h.ServeHTTP(rr, req)
			return rr
		}, http.StatusNotFound},
		{"zero cycles", func() *httptest.ResponseRecorder {
			return post("/v1/sessions/"+info.ID+"/step", `{"cycles":0}`)
		}, http.StatusBadRequest},
		{"unknown register", func() *httptest.ResponseRecorder {
			return post("/v1/sessions/"+info.ID+"/regs", `{"get":["nonesuch"]}`)
		}, http.StatusBadRequest},
		{"register width mismatch", func() *httptest.ResponseRecorder {
			return post("/v1/sessions/"+info.ID+"/regs", `{"set":{"n":{"width":4,"hex":"f"}}}`)
		}, http.StatusBadRequest},
		{"bad break expression", func() *httptest.ResponseRecorder {
			return post("/v1/sessions/"+info.ID+"/break", `{"cond":"(((("}`)
		}, http.StatusBadRequest},
		{"bad trace format", func() *httptest.ResponseRecorder {
			return get("/v1/sessions/" + info.ID + "/trace?cycles=5&format=gif")
		}, http.StatusBadRequest},
		{"trace without cycles", func() *httptest.ResponseRecorder {
			return get("/v1/sessions/" + info.ID + "/trace")
		}, http.StatusBadRequest},
		{"restore unknown checkpoint", func() *httptest.ResponseRecorder {
			return post("/v1/sessions/"+info.ID+"/restore", `{"checkpoint":"c999999"}`)
		}, http.StatusBadRequest},
		{"resurrect without store", func() *httptest.ResponseRecorder {
			return post("/v1/resurrect", `{"session":"nonesuch"}`)
		}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		rr := tc.run()
		if rr.Code != tc.want {
			t.Errorf("%s: status %d, want %d (body: %s)", tc.name, rr.Code, tc.want, rr.Body)
		}
		if rr.Code >= 400 {
			var er server.ErrorResponse
			if err := json.Unmarshal(rr.Body.Bytes(), &er); err != nil || er.Error == "" {
				t.Errorf("%s: error body is not an ErrorResponse: %s", tc.name, rr.Body)
			}
		}
	}
}

func TestStepTimeoutIsPartialResult(t *testing.T) {
	_, c := newTestDaemon(t, server.Config{StepTimeout: 50 * time.Millisecond})
	ctx := context.Background()
	info, err := c.Create(ctx, server.CreateRequest{Catalog: "collatz"})
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	step, err := c.Step(ctx, info.ID, 50_000_000)
	if err != nil {
		t.Fatalf("step: %v", err)
	}
	if step.Stopped != "timeout" {
		t.Fatalf("step = %+v, want a timeout stop", step)
	}
	if step.Ran == 0 || step.Ran >= 50_000_000 {
		t.Fatalf("ran %d cycles, want a partial run", step.Ran)
	}
}

func TestMetricsAndHealth(t *testing.T) {
	_, c := newTestDaemon(t, server.Config{})
	ctx := context.Background()
	if err := c.Health(ctx); err != nil {
		t.Fatalf("health: %v", err)
	}
	info, err := c.Create(ctx, server.CreateRequest{Catalog: "collatz"})
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	if _, err := c.Step(ctx, info.ID, 1000); err != nil {
		t.Fatalf("step: %v", err)
	}
	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	if m.Sessions != 1 || m.TotalCycles < 1000 || m.UptimeSec < 0 {
		t.Fatalf("metrics = %+v", m)
	}
}

// FuzzServerRequest throws arbitrary methods, paths, and bodies at the API
// and requires that nothing surfaces as a 5xx or a panic: every malformed
// input must map to an explicit 4xx.
func FuzzServerRequest(f *testing.F) {
	seeds := []struct {
		method, path, body string
	}{
		{"POST", "/v1/sessions", `{"catalog":"collatz"}`},
		{"POST", "/v1/sessions", `{"source":"design x\nregister r : bits<4>\nschedule:"}`},
		{"GET", "/v1/sessions", ""},
		{"GET", "/healthz", ""},
		{"GET", "/metrics", ""},
		{"POST", "/v1/sessions/s1/step", `{"cycles":10}`},
		{"POST", "/v1/sessions/s1/regs", `{"all":true}`},
		{"POST", "/v1/sessions/s1/break", `{"cond":"n.rd0() == 32'd1"}`},
		{"POST", "/v1/sessions/s1/checkpoint", ""},
		{"POST", "/v1/sessions/../../etc/passwd/step", `{"cycles":1}`},
		{"POST", "/v1/resurrect", `{"session":"../escape"}`},
		{"GET", "/v1/sessions/s1/trace?cycles=3&format=vcd", ""},
		{"DELETE", "/v1/sessions/s1", ""},
		{"PATCH", "/v1/sessions/s1", `{}`},
	}
	for _, s := range seeds {
		f.Add(s.method, s.path, s.body)
	}
	srv, err := server.New(server.Config{
		MaxSessions:   4,
		MaxBody:       16 << 10,
		MaxStepCycles: 10_000,
		StepTimeout:   2 * time.Second,
	})
	if err != nil {
		f.Fatalf("server.New: %v", err)
	}
	h := srv.Handler()
	f.Fuzz(func(t *testing.T, method, path, body string) {
		if !strings.HasPrefix(path, "/") || strings.ContainsAny(path, " \t\r\n#") {
			t.Skip()
		}
		// httptest.NewRequest panics on inputs a real server would reject at
		// the HTTP layer; pre-validate with the error-returning constructor
		// so the fuzzer only explores requests that can reach the mux.
		if _, err := http.NewRequest(method, "http://ksimd.test"+path, nil); err != nil {
			t.Skip()
		}
		req := httptest.NewRequest(method, path, bytes.NewReader([]byte(body)))
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, req)
		if rr.Code >= 500 {
			t.Fatalf("%s %s with body %q returned %d: %s", method, path, body, rr.Code, rr.Body)
		}
	})
}

// TestTraceStreamIsChunked checks the NDJSON stream arrives incrementally
// (one line per cycle) rather than as a single buffered document.
func TestTraceStreamIsChunked(t *testing.T) {
	_, c := newTestDaemon(t, server.Config{})
	ctx := context.Background()
	info, err := c.Create(ctx, server.CreateRequest{Catalog: "collatz"})
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	body, err := c.Trace(ctx, info.ID, 5, "events")
	if err != nil {
		t.Fatalf("trace: %v", err)
	}
	defer body.Close()
	sc := bufio.NewScanner(body)
	lines := 0
	for sc.Scan() {
		if len(bytes.TrimSpace(sc.Bytes())) > 0 {
			lines++
		}
	}
	if lines != 5 {
		t.Fatalf("stream had %d lines, want 5", lines)
	}
}
