// Package dap speaks the Debug Adapter Protocol for ksimd sessions: the
// wire framing and message envelopes in this file, the session logic in
// adapter.go. The subset implemented is what an IDE needs to drive a
// simulation like a paused program — initialize/launch/attach,
// conditional breakpoints, forward and reverse stepping, register
// inspection, and evaluate mapped to trace-store queries.
//
// DAP frames every JSON message with MIME-style headers, of which only
// Content-Length is meaningful:
//
//	Content-Length: 119\r\n
//	\r\n
//	{"seq":1,"type":"request","command":"initialize",...}
package dap

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// maxMessage bounds a single DAP message; none of our bodies (the largest
// is a full register dump) comes anywhere near it.
const maxMessage = 16 << 20

// request is an incoming client message. DAP clients only send requests.
type request struct {
	Seq       int             `json:"seq"`
	Type      string          `json:"type"`
	Command   string          `json:"command"`
	Arguments json.RawMessage `json:"arguments"`
}

// response answers one request. Success is deliberately not omitempty:
// "success":false must appear on the wire.
type response struct {
	Seq        int    `json:"seq"`
	Type       string `json:"type"` // always "response"
	RequestSeq int    `json:"request_seq"`
	Success    bool   `json:"success"`
	Command    string `json:"command"`
	Message    string `json:"message,omitempty"`
	Body       any    `json:"body,omitempty"`
}

// event is an adapter-initiated message (initialized, stopped, ...).
type event struct {
	Seq   int    `json:"seq"`
	Type  string `json:"type"` // always "event"
	Event string `json:"event"`
	Body  any    `json:"body,omitempty"`
}

// readMessage reads one framed DAP payload.
func readMessage(r *bufio.Reader) ([]byte, error) {
	length := -1
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			return nil, err
		}
		line = strings.TrimRight(line, "\r\n")
		if line == "" {
			break
		}
		if k, v, ok := strings.Cut(line, ":"); ok && strings.EqualFold(strings.TrimSpace(k), "Content-Length") {
			n, err := strconv.Atoi(strings.TrimSpace(v))
			if err != nil || n < 0 {
				return nil, fmt.Errorf("dap: bad Content-Length %q", strings.TrimSpace(v))
			}
			length = n
		}
	}
	if length < 0 {
		return nil, fmt.Errorf("dap: message without Content-Length")
	}
	if length > maxMessage {
		return nil, fmt.Errorf("dap: %d-byte message exceeds the %d limit", length, maxMessage)
	}
	buf := make([]byte, length)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// writeMessage frames and writes one payload.
func writeMessage(w io.Writer, v any) error {
	payload, err := json.Marshal(v)
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "Content-Length: %d\r\n\r\n", len(payload)); err != nil {
		return err
	}
	_, err = w.Write(payload)
	return err
}
