package dap

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"cuttlego/internal/kclient"
	"cuttlego/internal/router"
	"cuttlego/internal/server"
)

// testClient is a scripted DAP client over one end of a net.Pipe, with the
// adapter serving the other end.
type testClient struct {
	t      *testing.T
	conn   net.Conn
	r      *bufio.Reader
	seq    int
	events []map[string]any // events received while waiting for a response
}

func newTestClient(t *testing.T, backendURL string) *testClient {
	t.Helper()
	serverSide, clientSide := net.Pipe()
	done := make(chan error, 1)
	go func() { done <- Serve(serverSide, kclient.New(backendURL)) }()
	t.Cleanup(func() {
		clientSide.Close()
		serverSide.Close()
		select {
		case err := <-done:
			if err != nil {
				t.Errorf("adapter exited with: %v", err)
			}
		case <-time.After(5 * time.Second):
			t.Errorf("adapter did not exit")
		}
	})
	_ = clientSide.SetDeadline(time.Now().Add(60 * time.Second))
	return &testClient{t: t, conn: clientSide, r: bufio.NewReader(clientSide)}
}

func (c *testClient) send(cmd string, args any) {
	c.t.Helper()
	c.seq++
	raw, err := json.Marshal(args)
	if err != nil {
		c.t.Fatalf("marshal %s args: %v", cmd, err)
	}
	if err := writeMessage(c.conn, request{Seq: c.seq, Type: "request", Command: cmd, Arguments: raw}); err != nil {
		c.t.Fatalf("send %s: %v", cmd, err)
	}
}

func (c *testClient) recv() map[string]any {
	c.t.Helper()
	payload, err := readMessage(c.r)
	if err != nil {
		c.t.Fatalf("read message: %v", err)
	}
	var m map[string]any
	if err := json.Unmarshal(payload, &m); err != nil {
		c.t.Fatalf("decode message: %v", err)
	}
	return m
}

// roundTrip sends cmd and returns its successful response, queuing any
// events that arrive first.
func (c *testClient) roundTrip(cmd string, args any) map[string]any {
	c.t.Helper()
	c.send(cmd, args)
	for {
		m := c.recv()
		if m["type"] != "response" {
			c.events = append(c.events, m)
			continue
		}
		if m["command"] != cmd {
			c.t.Fatalf("response to %v while waiting for %s", m["command"], cmd)
		}
		if m["success"] != true {
			c.t.Fatalf("%s failed: %v", cmd, m["message"])
		}
		return m
	}
}

// expectFail sends cmd and asserts the adapter rejects it.
func (c *testClient) expectFail(cmd string, args any) string {
	c.t.Helper()
	c.send(cmd, args)
	for {
		m := c.recv()
		if m["type"] != "response" {
			c.events = append(c.events, m)
			continue
		}
		if m["success"] == true {
			c.t.Fatalf("%s unexpectedly succeeded", cmd)
		}
		msg, _ := m["message"].(string)
		return msg
	}
}

// waitEvent returns the next event with the given name, consuming the
// queue first.
func (c *testClient) waitEvent(name string) map[string]any {
	c.t.Helper()
	for i, e := range c.events {
		if e["event"] == name {
			c.events = append(c.events[:i], c.events[i+1:]...)
			return e
		}
	}
	for {
		m := c.recv()
		if m["type"] != "event" {
			c.t.Fatalf("got %v response while waiting for event %s", m["command"], name)
		}
		if m["event"] == name {
			return m
		}
		c.events = append(c.events, m)
	}
}

func body(m map[string]any) map[string]any {
	b, _ := m["body"].(map[string]any)
	return b
}

// frameCycle extracts the cycle from the single stack frame's name
// ("<design> @ cycle N").
func (c *testClient) frameCycle() uint64 {
	c.t.Helper()
	resp := c.roundTrip("stackTrace", map[string]any{"threadId": 1})
	frames, _ := body(resp)["stackFrames"].([]any)
	if len(frames) != 1 {
		c.t.Fatalf("stackTrace returned %d frames, want 1", len(frames))
	}
	name, _ := frames[0].(map[string]any)["name"].(string)
	var design string
	var cycle uint64
	if _, err := fmt.Sscanf(name, "%s @ cycle %d", &design, &cycle); err != nil {
		c.t.Fatalf("frame name %q is not \"<design> @ cycle N\": %v", name, err)
	}
	return cycle
}

// evaluate runs an expression in the debug console and returns the result.
func (c *testClient) evaluate(expr string) string {
	c.t.Helper()
	resp := c.roundTrip("evaluate", map[string]any{"expression": expr, "context": "repl"})
	res, _ := body(resp)["result"].(string)
	return res
}

// driveAcceptanceScript is the ISSUE's scripted session — attach →
// conditional breakpoint → continue → evaluate (trace query) → stepBack →
// reverseContinue — against whatever URL is in front of the session
// (daemon or fleet router).
func driveAcceptanceScript(t *testing.T, url, sessionID string) {
	c := newTestClient(t, url)

	resp := c.roundTrip("initialize", map[string]any{"adapterID": "kdap"})
	if body(resp)["supportsStepBack"] != true {
		t.Fatalf("initialize capabilities missing stepBack: %v", body(resp))
	}
	c.waitEvent("initialized")

	c.roundTrip("attach", map[string]any{"session": sessionID})

	const cond = "x.rd0() == 32'd1"
	resp = c.roundTrip("setBreakpoints", map[string]any{
		"breakpoints": []map[string]any{{"condition": cond}},
	})
	bps, _ := body(resp)["breakpoints"].([]any)
	if len(bps) != 1 || bps[0].(map[string]any)["verified"] != true {
		t.Fatalf("conditional breakpoint not verified: %v", bps)
	}

	c.roundTrip("configurationDone", nil)
	c.waitEvent("stopped")

	// Continue → the breakpoint fires somewhere past cycle 0.
	c.roundTrip("continue", map[string]any{"threadId": 1})
	ev := c.waitEvent("stopped")
	if body(ev)["reason"] != "breakpoint" {
		t.Fatalf("continue stopped with reason %v, want breakpoint", body(ev)["reason"])
	}
	hit := c.frameCycle()
	if hit == 0 {
		t.Fatalf("breakpoint hit at cycle 0")
	}

	// Variables pane: registers are visible.
	c.roundTrip("threads", nil)
	c.roundTrip("scopes", map[string]any{"frameId": 1})
	resp = c.roundTrip("variables", map[string]any{"variablesReference": 1})
	vars, _ := body(resp)["variables"].([]any)
	seen := map[string]bool{}
	for _, v := range vars {
		seen[v.(map[string]any)["name"].(string)] = true
	}
	if !seen["x"] || !seen["done"] {
		t.Fatalf("variables %v missing x/done", seen)
	}

	// Evaluate: register peek, then a trace query that must agree with
	// where the breakpoint actually stopped.
	if got := c.evaluate("x"); !strings.HasPrefix(got, "0x1 ") {
		t.Fatalf("evaluate x = %q at the x==1 breakpoint", got)
	}
	if got := c.evaluate("first " + cond); got != fmt.Sprintf("cycle %d", hit) {
		t.Fatalf("trace query %q = %q, breakpoint hit cycle %d", cond, got, hit)
	}

	// stepBack: one cycle of reverse execution.
	c.roundTrip("stepBack", map[string]any{"threadId": 1})
	c.waitEvent("stopped")
	if got := c.frameCycle(); got != hit-1 {
		t.Fatalf("stepBack landed on cycle %d, want %d", got, hit-1)
	}

	// reverseContinue: x==1 never held before the hit, so the adapter's
	// "last" query finds nothing and the session rewinds to entry.
	c.roundTrip("reverseContinue", map[string]any{"threadId": 1})
	ev = c.waitEvent("stopped")
	if body(ev)["reason"] != "entry" {
		t.Fatalf("reverseContinue stopped with reason %v, want entry", body(ev)["reason"])
	}
	if got := c.frameCycle(); got != 0 {
		t.Fatalf("reverseContinue landed on cycle %d, want 0", got)
	}

	// Forward again, then reverseContinue onto a condition that held one
	// cycle earlier — the trace query must place the stop, not a rewind.
	c.roundTrip("continue", map[string]any{"threadId": 1})
	c.waitEvent("stopped")
	c.roundTrip("setBreakpoints", map[string]any{
		"breakpoints": []map[string]any{{"condition": "x.rd0() >=u 32'd0"}}, // holds everywhere
	})
	c.roundTrip("reverseContinue", map[string]any{"threadId": 1})
	ev = c.waitEvent("stopped")
	if body(ev)["reason"] != "breakpoint" {
		t.Fatalf("reverseContinue with a holding condition stopped with %v, want breakpoint", body(ev)["reason"])
	}
	if got := c.frameCycle(); got != hit-1 {
		t.Fatalf("reverseContinue stopped at cycle %d, want %d", got, hit-1)
	}

	c.roundTrip("disconnect", nil)
	c.waitEvent("terminated")
}

func TestDAPAgainstLocalDaemon(t *testing.T) {
	srv, err := server.New(server.Config{StoreDir: t.TempDir()})
	if err != nil {
		t.Fatalf("server.New: %v", err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(func() { _ = srv.Close() })
	info, err := kclient.New(ts.URL).Create(context.Background(), server.CreateRequest{Catalog: "collatz"})
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	driveAcceptanceScript(t, ts.URL, info.ID)
}

func TestDAPAgainstRoutedFleet(t *testing.T) {
	dir := t.TempDir()
	var specs []string
	for i := 0; i < 2; i++ {
		srv, err := server.New(server.Config{StoreDir: dir})
		if err != nil {
			t.Fatalf("server.New: %v", err)
		}
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(ts.Close)
		t.Cleanup(func() { _ = srv.Close() })
		specs = append(specs, ts.URL)
	}
	rt, err := router.New(router.Config{Backends: specs, StoreDir: dir})
	if err != nil {
		t.Fatalf("router.New: %v", err)
	}
	rt.Probe()
	t.Cleanup(rt.Close)
	rts := httptest.NewServer(rt.Handler())
	t.Cleanup(rts.Close)

	info, err := kclient.New(rts.URL).Create(context.Background(), server.CreateRequest{Catalog: "collatz"})
	if err != nil {
		t.Fatalf("create via router: %v", err)
	}
	driveAcceptanceScript(t, rts.URL, info.ID)
}

// TestDAPLaunchOwnsSession: launch creates the session and disconnect
// deletes it; attach must leave sessions alone.
func TestDAPLaunchOwnsSession(t *testing.T) {
	srv, err := server.New(server.Config{StoreDir: t.TempDir()})
	if err != nil {
		t.Fatalf("server.New: %v", err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(func() { _ = srv.Close() })
	kc := kclient.New(ts.URL)

	c := newTestClient(t, ts.URL)
	c.roundTrip("initialize", nil)
	c.waitEvent("initialized")
	c.expectFail("launch", map[string]any{}) // no design named
	c.roundTrip("launch", map[string]any{"design": "collatz"})
	c.roundTrip("configurationDone", nil)
	c.waitEvent("stopped")
	list, err := kc.List(context.Background())
	if err != nil || len(list) != 1 {
		t.Fatalf("after launch: sessions %v (err %v), want exactly one", list, err)
	}
	c.roundTrip("next", map[string]any{"threadId": 1})
	c.waitEvent("stopped")
	c.roundTrip("disconnect", nil)
	c.waitEvent("terminated")

	deadline := time.Now().Add(5 * time.Second)
	for {
		list, err = kc.List(context.Background())
		if err == nil && len(list) == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("launched session was not deleted on disconnect: %v", list)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
