package dap

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"

	"cuttlego/internal/bench"
	"cuttlego/internal/kclient"
	"cuttlego/internal/server"
)

// continueBudget is how many cycles one "continue" runs before reporting
// back; the IDE's thread stays responsive and a runaway design cannot hang
// the debug session (the daemon's own step cap still applies underneath).
const continueBudget = 100_000

// Adapter drives one ksimd session on behalf of one DAP client. It is
// single-threaded by construction: DAP requests arrive in order and each
// is answered before the next is read.
type Adapter struct {
	client *kclient.Client
	in     *bufio.Reader
	out    io.Writer
	wmu    sync.Mutex
	seq    int

	id     string   // the debugged session
	design string   // its design name, for stack frames
	owns   bool     // launch created it, so disconnect deletes it
	conds  []string // breakpoint conditions, as last set by setBreakpoints
	cycle  uint64
}

// Serve runs a DAP session over rw (stdio, a TCP connection, a pipe in
// tests) against the ksimd daemon behind client. It returns when the
// client disconnects or the transport fails.
func Serve(rw io.ReadWriter, client *kclient.Client) error {
	a := &Adapter{client: client, in: bufio.NewReader(rw), out: rw}
	return a.run()
}

var errDisconnect = errors.New("dap: client disconnected")

func (a *Adapter) run() error {
	for {
		payload, err := readMessage(a.in)
		if err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				return nil
			}
			return err
		}
		var req request
		if err := json.Unmarshal(payload, &req); err != nil {
			return fmt.Errorf("dap: malformed request: %w", err)
		}
		if err := a.dispatch(req); err != nil {
			if errors.Is(err, errDisconnect) {
				return nil
			}
			return err
		}
	}
}

func (a *Adapter) send(v any) error {
	a.wmu.Lock()
	defer a.wmu.Unlock()
	return writeMessage(a.out, v)
}

func (a *Adapter) respond(req request, body any) error {
	a.seq++
	return a.send(response{Seq: a.seq, Type: "response", RequestSeq: req.Seq,
		Success: true, Command: req.Command, Body: body})
}

func (a *Adapter) fail(req request, err error) error {
	a.seq++
	return a.send(response{Seq: a.seq, Type: "response", RequestSeq: req.Seq,
		Success: false, Command: req.Command, Message: err.Error()})
}

func (a *Adapter) emit(name string, body any) error {
	a.seq++
	return a.send(event{Seq: a.seq, Type: "event", Event: name, Body: body})
}

// stopped tells the IDE execution halted; every stop names thread 1, the
// simulation's only thread.
func (a *Adapter) stopped(reason, description string) error {
	return a.emit("stopped", map[string]any{
		"reason": reason, "description": description, "threadId": 1, "allThreadsStopped": true,
	})
}

func (a *Adapter) dispatch(req request) error {
	ctx := context.Background()
	switch req.Command {
	case "initialize":
		if err := a.respond(req, map[string]any{
			"supportsConfigurationDoneRequest": true,
			"supportsConditionalBreakpoints":   true,
			"supportsStepBack":                 true, // stepBack + reverseContinue
			"supportsEvaluateForHovers":        true,
		}); err != nil {
			return err
		}
		return a.emit("initialized", nil)

	case "launch":
		var args struct {
			Design string `json:"design"`
		}
		_ = json.Unmarshal(req.Arguments, &args)
		if args.Design == "" {
			return a.fail(req, fmt.Errorf(`launch needs {"design": <catalogue name or .koika path>}`))
		}
		create := server.CreateRequest{}
		if _, ok := bench.Lookup(args.Design); ok {
			create.Catalog = args.Design
		} else {
			src, err := os.ReadFile(args.Design)
			if err != nil {
				return a.fail(req, fmt.Errorf("%q is neither a catalogue design %v nor a readable file: %w",
					args.Design, bench.Names(), err))
			}
			create.Source = string(src)
		}
		info, err := a.client.Create(ctx, create)
		if err != nil {
			return a.fail(req, err)
		}
		a.id, a.design, a.owns, a.cycle = info.ID, info.Design, true, info.Cycle
		a.startRecording(ctx)
		return a.respond(req, nil)

	case "attach":
		var args struct {
			Session string `json:"session"`
		}
		_ = json.Unmarshal(req.Arguments, &args)
		if args.Session == "" {
			return a.fail(req, fmt.Errorf(`attach needs {"session": <ksimd session id>}`))
		}
		info, err := a.client.Info(ctx, args.Session)
		if err != nil {
			return a.fail(req, err)
		}
		a.id, a.design, a.owns, a.cycle = info.ID, info.Design, false, info.Cycle
		a.startRecording(ctx)
		return a.respond(req, nil)

	case "setBreakpoints":
		var args struct {
			Breakpoints []struct {
				Condition string `json:"condition"`
				Line      int    `json:"line"`
			} `json:"breakpoints"`
		}
		_ = json.Unmarshal(req.Arguments, &args)
		if err := a.client.Break(ctx, a.id, server.BreakRequest{Clear: true}); err != nil {
			return a.fail(req, err)
		}
		a.conds = a.conds[:0]
		type bp struct {
			Verified bool   `json:"verified"`
			Message  string `json:"message,omitempty"`
			Line     int    `json:"line,omitempty"`
		}
		out := make([]bp, 0, len(args.Breakpoints))
		for _, b := range args.Breakpoints {
			if b.Condition == "" {
				// Simulations have no source lines to break on; only
				// conditional breakpoints can be honored.
				out = append(out, bp{Verified: false, Line: b.Line,
					Message: "line breakpoints are not supported; add a condition (e.g. done.rd0() == 1'd1)"})
				continue
			}
			if err := a.client.Break(ctx, a.id, server.BreakRequest{Cond: b.Condition}); err != nil {
				out = append(out, bp{Verified: false, Line: b.Line, Message: err.Error()})
				continue
			}
			a.conds = append(a.conds, b.Condition)
			out = append(out, bp{Verified: true, Line: b.Line})
		}
		return a.respond(req, map[string]any{"breakpoints": out})

	case "configurationDone":
		if err := a.respond(req, nil); err != nil {
			return err
		}
		// The session is born paused; show the IDE its entry state.
		return a.stopped("entry", fmt.Sprintf("session %s at cycle %d", a.id, a.cycle))

	case "threads":
		return a.respond(req, map[string]any{
			"threads": []map[string]any{{"id": 1, "name": "simulation"}},
		})

	case "stackTrace":
		info, err := a.client.Info(ctx, a.id)
		if err != nil {
			return a.fail(req, err)
		}
		a.cycle = info.Cycle
		return a.respond(req, map[string]any{
			"stackFrames": []map[string]any{{
				"id":     1,
				"name":   fmt.Sprintf("%s @ cycle %d", a.design, a.cycle),
				"line":   0,
				"column": 0,
			}},
			"totalFrames": 1,
		})

	case "scopes":
		return a.respond(req, map[string]any{
			"scopes": []map[string]any{{
				"name": "Registers", "variablesReference": 1, "expensive": false,
			}},
		})

	case "variables":
		regs, err := a.client.Regs(ctx, a.id, server.RegsRequest{All: true})
		if err != nil {
			return a.fail(req, err)
		}
		names := make([]string, 0, len(regs.Values))
		for name := range regs.Values {
			names = append(names, name)
		}
		sort.Strings(names)
		type variable struct {
			Name               string `json:"name"`
			Value              string `json:"value"`
			VariablesReference int    `json:"variablesReference"`
		}
		vars := make([]variable, 0, len(names))
		for _, name := range names {
			v := regs.Values[name]
			vars = append(vars, variable{Name: name, Value: fmt.Sprintf("0x%s (%d bits)", v.Hex, v.Width)})
		}
		return a.respond(req, map[string]any{"variables": vars})

	case "continue":
		resp, err := a.client.Step(ctx, a.id, continueBudget)
		if err != nil {
			return a.fail(req, err)
		}
		a.cycle = resp.Cycle
		if err := a.respond(req, map[string]any{"allThreadsContinued": true}); err != nil {
			return err
		}
		if resp.Stopped != "" {
			return a.stopped("breakpoint", resp.Stopped)
		}
		return a.stopped("pause", fmt.Sprintf("ran %d cycles without hitting a breakpoint", resp.Ran))

	case "next", "stepIn", "stepOut":
		resp, err := a.client.Step(ctx, a.id, 1)
		if err != nil {
			return a.fail(req, err)
		}
		a.cycle = resp.Cycle
		if err := a.respond(req, nil); err != nil {
			return err
		}
		return a.stopped("step", fmt.Sprintf("cycle %d", a.cycle))

	case "stepBack":
		info, err := a.client.Reverse(ctx, a.id, 1)
		if err != nil {
			return a.fail(req, err)
		}
		a.cycle = info.Cycle
		if err := a.respond(req, nil); err != nil {
			return err
		}
		return a.stopped("step", fmt.Sprintf("cycle %d", a.cycle))

	case "reverseContinue":
		reason, desc, err := a.reverseContinue(ctx)
		if err != nil {
			return a.fail(req, err)
		}
		if err := a.respond(req, nil); err != nil {
			return err
		}
		return a.stopped(reason, desc)

	case "evaluate":
		var args struct {
			Expression string `json:"expression"`
		}
		_ = json.Unmarshal(req.Arguments, &args)
		result, err := a.evaluate(ctx, strings.TrimSpace(args.Expression))
		if err != nil {
			return a.fail(req, err)
		}
		return a.respond(req, map[string]any{"result": result, "variablesReference": 0})

	case "pause":
		// Steps are synchronous server-side; there is nothing in flight to
		// interrupt. Acknowledge and report the current position.
		if err := a.respond(req, nil); err != nil {
			return err
		}
		return a.stopped("pause", fmt.Sprintf("cycle %d", a.cycle))

	case "disconnect", "terminate":
		if a.owns && a.id != "" {
			_ = a.client.Delete(ctx, a.id)
		}
		if err := a.respond(req, nil); err != nil {
			return err
		}
		_ = a.emit("terminated", nil)
		return errDisconnect

	default:
		return a.fail(req, fmt.Errorf("unsupported request %q", req.Command))
	}
}

// startRecording best-effort enables trace recording so evaluate can run
// time-travel queries. A daemon without a store answers 409; the debug
// session still works, only queries are unavailable.
func (a *Adapter) startRecording(ctx context.Context) {
	_, _ = a.client.TraceRecord(ctx, a.id, true)
}

// reverseContinue runs backwards to the most recent earlier cycle where
// any breakpoint condition held, found with a "last" trace query over the
// recording; without conditions or a recording it rewinds to cycle 0.
func (a *Adapter) reverseContinue(ctx context.Context) (reason, desc string, err error) {
	if a.cycle == 0 {
		return "entry", "already at cycle 0", nil
	}
	if len(a.conds) > 0 {
		expr := a.conds[0]
		if len(a.conds) > 1 {
			parts := make([]string, len(a.conds))
			for i, c := range a.conds {
				parts[i] = "(" + c + ")"
			}
			expr = strings.Join(parts, " | ")
		}
		res, qerr := a.client.TraceQuery(ctx, a.id, server.TraceQueryRequest{
			Mode: "last", Expr: expr, From: 0, To: a.cycle - 1,
		})
		var apiErr *kclient.APIError
		switch {
		case qerr == nil && res.Matched:
			info, err := a.client.Reverse(ctx, a.id, a.cycle-res.Cycle)
			if err != nil {
				return "", "", err
			}
			a.cycle = info.Cycle
			return "breakpoint", fmt.Sprintf("breakpoint held at cycle %d", a.cycle), nil
		case qerr != nil && !(errors.As(qerr, &apiErr) && apiErr.Status == http.StatusConflict):
			// 409 means no recording — fall through to a plain rewind; any
			// other failure is real.
			return "", "", qerr
		}
	}
	info, err := a.client.Reverse(ctx, a.id, a.cycle)
	if err != nil {
		return "", "", err
	}
	a.cycle = info.Cycle
	return "entry", fmt.Sprintf("rewound to cycle %d", a.cycle), nil
}

// evaluate answers an IDE expression: a bare register name reads the live
// value, anything else runs as a trace query ("first <expr>" unless the
// expression already names a mode).
func (a *Adapter) evaluate(ctx context.Context, expr string) (string, error) {
	if expr == "" {
		return "", fmt.Errorf("empty expression")
	}
	if isIdent(expr) {
		regs, err := a.client.Regs(ctx, a.id, server.RegsRequest{Get: []string{expr}})
		if err == nil {
			if v, ok := regs.Values[expr]; ok {
				return fmt.Sprintf("0x%s (%d bits)", v.Hex, v.Width), nil
			}
		}
		return "", fmt.Errorf("no register %q", expr)
	}
	q := expr
	switch strings.Fields(expr)[0] {
	case "first", "last", "count", "scan":
	default:
		q = "first " + expr
	}
	res, err := a.client.TraceQuery(ctx, a.id, server.TraceQueryRequest{Query: q})
	if err != nil {
		return "", err
	}
	switch {
	case len(res.Matches) > 0:
		return fmt.Sprintf("%d matching cycles: %v", len(res.Matches), res.Matches), nil
	case res.Matched:
		return fmt.Sprintf("cycle %d", res.Cycle), nil
	case strings.HasPrefix(res.Query, "count"):
		return fmt.Sprintf("%d matching cycles", res.Count), nil
	default:
		return "no match", nil
	}
}

// isIdent reports whether s looks like a plain register name.
func isIdent(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_' || c == '.' {
			continue
		}
		return false
	}
	return len(s) > 0
}
