package testkit_test

import (
	"testing"

	"cuttlego/internal/interp"
	"cuttlego/internal/sim"
	"cuttlego/internal/testkit"
)

// The generator must be deterministic per seed and produce checkable
// designs: the conformance suites depend on both properties.
func TestRandomIsDeterministic(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		a := testkit.Random(seed)
		b := testkit.Random(seed)
		if err := a.Check(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := b.Check(); err != nil {
			t.Fatalf("seed %d (second build): %v", seed, err)
		}
		if a.Print().Text() != b.Print().Text() {
			t.Fatalf("seed %d: two builds differ", seed)
		}
	}
}

func TestZooBuildersReturnFreshDesigns(t *testing.T) {
	for _, entry := range testkit.Zoo() {
		a := entry.Build()
		b := entry.Build()
		if a == b {
			t.Fatalf("%s: builder returned a shared design", entry.Name)
		}
		if err := a.Check(); err != nil {
			t.Fatalf("%s: %v", entry.Name, err)
		}
		if err := b.Check(); err != nil {
			t.Fatalf("%s (second build): %v", entry.Name, err)
		}
	}
}

func TestCompareDetectsDivergence(t *testing.T) {
	// Two engines over designs with different initial values must trip the
	// comparator.
	zoo := testkit.Zoo()[0] // counter
	a, err := interp.New(zoo.Build().MustCheck())
	if err != nil {
		t.Fatal(err)
	}
	d2 := zoo.Build()
	d2.Registers[0].Init = d2.Registers[0].Init.Add(d2.Registers[0].Init.Not()) // all ones
	b, err := interp.New(d2.MustCheck())
	if err != nil {
		t.Fatal(err)
	}
	rec := &recorder{}
	testkit.Compare(rec, map[string]sim.Engine{"interp": a, "other": b}, 2, nil)
	if !rec.failed {
		t.Fatal("Compare missed a divergence")
	}
}

type recorder struct{ failed bool }

func (r *recorder) Fatalf(string, ...any) { r.failed = true }
func (r *recorder) Helper()               {}
