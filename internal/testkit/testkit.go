// Package testkit provides the cross-engine conformance machinery: a zoo of
// small designs that each pin down one corner of Kôika's semantics, a
// seeded random-design generator, and a lockstep comparator. Every
// simulation pipeline in the module is tested against the reference
// interpreter through this package.
package testkit

import (
	"fmt"
	"math/rand"

	"cuttlego/internal/ast"
	"cuttlego/internal/bits"
	"cuttlego/internal/sim"
)

// ZooEntry is one named conformance design.
type ZooEntry struct {
	Name  string
	Build func() *ast.Design
}

// Zoo returns the conformance designs. Builders return fresh designs on
// every call (node IDs are assigned per design instance).
func Zoo() []ZooEntry {
	return []ZooEntry{
		{"counter", func() *ast.Design {
			d := ast.NewDesign("counter")
			d.Reg("x", ast.Bits(16), 0)
			d.Rule("inc", ast.Wr0("x", ast.Add(ast.Rd0("x"), ast.C(16, 1))))
			return d
		}},
		{"two-state-machine", func() *ast.Design {
			d := ast.NewDesign("stm")
			st := ast.NewEnum("state", 1, "A", "B")
			d.Reg("st", st, 0)
			d.Reg("x", ast.Bits(32), 3)
			d.Rule("rlA",
				ast.Guard(ast.Eq(ast.Rd0("st"), ast.E(st, "A"))),
				ast.Wr0("st", ast.E(st, "B")),
				ast.Wr0("x", ast.Add(ast.Rd0("x"), ast.C(32, 10))))
			d.Rule("rlB",
				ast.Guard(ast.Eq(ast.Rd0("st"), ast.E(st, "B"))),
				ast.Wr0("st", ast.E(st, "A")),
				ast.Wr0("x", ast.Mul(ast.Rd0("x"), ast.C(32, 3))))
			return d
		}},
		{"goldberg", func() *ast.Design {
			d := ast.NewDesign("goldberg")
			d.Reg("r", ast.Bits(8), 0)
			d.Reg("saw0", ast.Bits(8), 0xff)
			d.Reg("saw1", ast.Bits(8), 0xff)
			d.Rule("rl",
				ast.Wr0("r", ast.Add(ast.Rd0("saw0"), ast.C(8, 1))),
				ast.Wr1("r", ast.C(8, 2)),
				ast.Wr0("saw0", ast.Rd0("r")),
				ast.Wr0("saw1", ast.Rd1("r")))
			return d
		}},
		{"wire-forwarding", func() *ast.Design {
			d := ast.NewDesign("wire")
			d.Reg("w", ast.Bits(8), 0)
			d.Reg("src", ast.Bits(8), 1)
			d.Reg("dst", ast.Bits(8), 0)
			d.Rule("produce", ast.Wr0("w", ast.Add(ast.Rd0("src"), ast.Rd0("src"))))
			d.Rule("consume", ast.Wr0("dst", ast.Rd1("w")))
			d.Rule("bump", ast.Wr0("src", ast.Add(ast.Rd0("src"), ast.C(8, 1))))
			return d
		}},
		{"write-conflict", func() *ast.Design {
			d := ast.NewDesign("conflict")
			d.Reg("r", ast.Bits(8), 0)
			d.Reg("t", ast.Bits(8), 0)
			d.Rule("a", ast.When(ast.Eq(ast.Slice(ast.Rd0("t"), 0, 1), ast.C(1, 0)),
				ast.Wr0("r", ast.C(8, 1))))
			d.Rule("b", ast.Wr0("r", ast.C(8, 2)))
			d.Rule("tick", ast.Wr0("t", ast.Add(ast.Rd0("t"), ast.C(8, 1))))
			return d
		}},
		{"wr1-precedence", func() *ast.Design {
			d := ast.NewDesign("wr1prec")
			d.Reg("r", ast.Bits(8), 0)
			d.Rule("w0", ast.Wr0("r", ast.C(8, 1)))
			d.Rule("w1", ast.Wr1("r", ast.Add(ast.Rd1("r"), ast.C(8, 10))))
			return d
		}},
		{"guarded-pipeline", func() *ast.Design {
			// A 2-stage pipeline over EHR-style valid bits.
			d := ast.NewDesign("pipe2")
			d.Reg("v0", ast.Bits(1), 0)
			d.Reg("d0", ast.Bits(8), 0)
			d.Reg("v1", ast.Bits(1), 0)
			d.Reg("d1", ast.Bits(8), 0)
			d.Reg("src", ast.Bits(8), 0)
			d.Reg("out", ast.Bits(8), 0)
			d.Rule("stage2",
				ast.Guard(ast.Eq(ast.Rd0("v1"), ast.C(1, 1))),
				ast.Wr0("out", ast.Rd0("d1")),
				ast.Wr0("v1", ast.C(1, 0)))
			d.Rule("stage1",
				ast.Guard(ast.Eq(ast.Rd0("v0"), ast.C(1, 1))),
				ast.Guard(ast.Eq(ast.Rd1("v1"), ast.C(1, 0))),
				ast.Wr0("d1", ast.Add(ast.Rd0("d0"), ast.C(8, 100))),
				ast.Wr1("v1", ast.C(1, 1)),
				ast.Wr0("v0", ast.C(1, 0)))
			d.Rule("feed",
				ast.Guard(ast.Eq(ast.Rd1("v0"), ast.C(1, 0))),
				ast.Wr0("d0", ast.Rd0("src")),
				ast.Wr1("v0", ast.C(1, 1)),
				ast.Wr0("src", ast.Add(ast.Rd0("src"), ast.C(8, 1))))
			return d
		}},
		{"structs-and-switch", func() *ast.Design {
			op := ast.NewEnum("op", 2, "Nop", "Inc", "Dec", "Neg")
			req := ast.NewStruct("req", ast.F("op", op), ast.F("val", ast.Bits(8)))
			d := ast.NewDesign("structs")
			d.RegB("req", req, req.PackValues(op.Value("Inc"), bits.New(8, 5)))
			d.Reg("acc", ast.Bits(8), 0)
			d.Rule("step",
				ast.Let("r", ast.Rd0("req"),
					ast.Wr0("acc", ast.Switch(ast.Field(ast.V("r"), "op"), ast.Rd0("acc"),
						ast.Case{Match: ast.E(op, "Inc"), Body: ast.Add(ast.Rd0("acc"), ast.Field(ast.V("r"), "val"))},
						ast.Case{Match: ast.E(op, "Dec"), Body: ast.Sub(ast.Rd0("acc"), ast.Field(ast.V("r"), "val"))},
						ast.Case{Match: ast.E(op, "Neg"), Body: ast.Not(ast.Rd0("acc"))},
					)),
					ast.Wr0("req", ast.SetField(ast.V("r"), "op", ast.E(op, "Nop"))),
				),
			)
			d.Rule("reload",
				ast.Let("r", ast.Rd1("req"),
					ast.When(ast.Eq(ast.Field(ast.V("r"), "op"), ast.E(op, "Nop")),
						ast.Wr1("req", ast.Pack(req, ast.E(op, "Inc"), ast.Add(ast.Field(ast.V("r"), "val"), ast.C(8, 1)))))))
			return d
		}},
		{"extcall", func() *ast.Design {
			d := ast.NewDesign("extcall")
			d.Reg("x", ast.Bits(8), 1)
			d.ExtFun("mix", []int{8, 8}, ast.Bits(8), func(a []bits.Bits) bits.Bits {
				return a[0].Mul(a[1]).Add(bits.New(8, 7))
			})
			d.Rule("r", ast.Wr0("x", ast.ExtCall("mix", ast.Rd0("x"), ast.C(8, 3))))
			return d
		}},
		{"locals-and-assign", func() *ast.Design {
			d := ast.NewDesign("locals")
			d.Reg("x", ast.Bits(8), 0)
			d.Reg("y", ast.Bits(8), 0)
			d.Rule("r",
				ast.Let("a", ast.Rd0("x"),
					ast.Let("b", ast.C(8, 1),
						ast.When(ast.Ltu(ast.V("a"), ast.C(8, 10)),
							ast.Set("b", ast.C(8, 2))),
						ast.Wr0("x", ast.Add(ast.V("a"), ast.V("b"))),
						ast.Wr0("y", ast.V("b")))))
			return d
		}},
		{"mostly-failing", func() *ast.Design {
			d := ast.NewDesign("failing")
			d.Reg("x", ast.Bits(8), 0)
			d.Reg("y", ast.Bits(8), 0)
			d.Rule("never", ast.Fail())
			d.Rule("dirtyfail", ast.Wr0("y", ast.C(8, 3)), ast.When(ast.Eq(ast.Rd0("x"), ast.Rd0("x")), ast.Fail()))
			d.Rule("works", ast.Wr0("x", ast.Add(ast.Rd0("x"), ast.C(8, 1))))
			return d
		}},
	}
}

// Compare runs every engine in lockstep for n cycles, failing the reporter
// on the first divergence of register state or rule firings. The optional
// drive callback mutates inputs before each cycle; it receives every engine
// so inputs stay identical.
func Compare(t TB, engines map[string]sim.Engine, n uint64, drive func(cycle uint64, set func(reg string, v bits.Bits))) {
	if len(engines) < 2 {
		t.Fatalf("testkit: need at least two engines")
	}
	var ref string
	for name := range engines {
		if ref == "" || name < ref {
			if name == "interp" {
				ref = name
				break
			}
			ref = name
		}
	}
	refEng := engines[ref]
	d := refEng.Design()
	for cycle := uint64(0); cycle < n; cycle++ {
		if drive != nil {
			drive(cycle, func(reg string, v bits.Bits) {
				for _, e := range engines {
					e.SetReg(reg, v)
				}
			})
		}
		for _, e := range engines {
			e.Cycle()
		}
		want := sim.StateOf(refEng)
		for name, e := range engines {
			if name == ref {
				continue
			}
			got := sim.StateOf(e)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("design %s cycle %d: engine %s reg %s = %v, %s has %v",
						d.Name, cycle, name, d.Registers[i].Name, got[i], ref, want[i])
				}
			}
			for _, r := range d.Rules {
				if e.RuleFired(r.Name) != refEng.RuleFired(r.Name) {
					t.Fatalf("design %s cycle %d: engine %s rule %s fired=%v, %s disagrees",
						d.Name, cycle, name, r.Name, e.RuleFired(r.Name), ref)
				}
			}
		}
	}
}

// TB is the subset of testing.TB the comparator needs.
type TB interface {
	Fatalf(format string, args ...any)
	Helper()
}

// Random generates a random well-typed design from a seed. Designs mix
// plain registers, wires, and EHRs, conditional and failing rules, local
// bindings, and arithmetic, so they exercise conflict detection, rollback,
// and forwarding paths across engines.
func Random(seed int64) *ast.Design {
	r := rand.New(rand.NewSource(seed))
	g := &gen{r: r, d: ast.NewDesign(fmt.Sprintf("rand%d", seed))}
	nregs := 2 + r.Intn(5)
	widths := []int{1, 4, 8, 16, 33}
	for i := 0; i < nregs; i++ {
		w := widths[r.Intn(len(widths))]
		g.regs = append(g.regs, regInfo{name: fmt.Sprintf("r%d", i), w: w})
		g.d.Reg(fmt.Sprintf("r%d", i), ast.Bits(w), r.Uint64())
	}
	nrules := 1 + r.Intn(4)
	for i := 0; i < nrules; i++ {
		g.vars = g.vars[:0]
		g.d.Rule(fmt.Sprintf("rule%d", i), g.action(3))
	}
	return g.d
}

type regInfo struct {
	name string
	w    int
}

type gen struct {
	r    *rand.Rand
	d    *ast.Design
	regs []regInfo
	vars []regInfo
	n    int
}

func (g *gen) fresh() string {
	g.n++
	return fmt.Sprintf("v%d", g.n)
}

func (g *gen) reg() regInfo { return g.regs[g.r.Intn(len(g.regs))] }

// expr produces a random expression of width w with bounded depth.
func (g *gen) expr(w, depth int) *ast.Node {
	if depth <= 0 {
		return g.leaf(w)
	}
	switch g.r.Intn(8) {
	case 0:
		return g.leaf(w)
	case 1:
		ops := []func(a, b *ast.Node) *ast.Node{ast.Add, ast.Sub, ast.And, ast.Or, ast.Xor, ast.Mul}
		return ops[g.r.Intn(len(ops))](g.expr(w, depth-1), g.expr(w, depth-1))
	case 2:
		return ast.Not(g.expr(w, depth-1))
	case 3:
		// Comparison widened to w.
		iw := []int{1, 4, 8}[g.r.Intn(3)]
		cmps := []func(a, b *ast.Node) *ast.Node{ast.Eq, ast.Neq, ast.Ltu, ast.Lts, ast.Geu, ast.Ges}
		c := cmps[g.r.Intn(len(cmps))](g.expr(iw, depth-1), g.expr(iw, depth-1))
		return ast.ZeroExtend(w, c)
	case 4:
		// Slice of something wider.
		src := w + 1 + g.r.Intn(8)
		if src > 64 {
			src = 64
		}
		lo := g.r.Intn(src - w + 1)
		return ast.Slice(g.expr(src, depth-1), lo, w)
	case 5:
		if w > 1 {
			return ast.SignExtend(w, g.expr(1+g.r.Intn(w), depth-1))
		}
		return g.leaf(w)
	case 6:
		return ast.If(g.expr(1, depth-1), g.expr(w, depth-1), g.expr(w, depth-1))
	default:
		sh := g.r.Intn(3) + 1
		shifts := []func(a, b *ast.Node) *ast.Node{ast.Sll, ast.Srl, ast.Sra}
		return shifts[g.r.Intn(3)](g.expr(w, depth-1), ast.C(3, uint64(sh)))
	}
}

func (g *gen) leaf(w int) *ast.Node {
	// Try a variable or register of the right width, else a constant.
	choices := g.r.Intn(3)
	if choices == 0 {
		for _, off := range g.r.Perm(len(g.vars)) {
			if g.vars[off].w == w {
				return ast.V(g.vars[off].name)
			}
		}
	}
	if choices <= 1 {
		for _, off := range g.r.Perm(len(g.regs)) {
			if g.regs[off].w == w {
				if g.r.Intn(3) == 0 {
					return ast.Rd1(g.regs[off].name)
				}
				return ast.Rd0(g.regs[off].name)
			}
		}
	}
	return ast.C(w, g.r.Uint64())
}

// action produces a random unit-valued action.
func (g *gen) action(depth int) *ast.Node {
	nstmts := 1 + g.r.Intn(3)
	items := make([]*ast.Node, 0, nstmts)
	for i := 0; i < nstmts; i++ {
		items = append(items, g.stmt(depth))
	}
	return ast.Seq(items...)
}

func (g *gen) stmt(depth int) *ast.Node {
	if depth <= 0 {
		return g.write()
	}
	switch g.r.Intn(6) {
	case 0:
		return g.write()
	case 1:
		name := g.fresh()
		w := []int{1, 4, 8, 16}[g.r.Intn(4)]
		g.vars = append(g.vars, regInfo{name: name, w: w})
		body := g.action(depth - 1)
		g.vars = g.vars[:len(g.vars)-1]
		return ast.Let(name, g.expr(w, 2), body)
	case 2:
		return ast.When(g.expr(1, 2), g.action(depth-1))
	case 3:
		return ast.If(g.expr(1, 2), g.action(depth-1), g.action(depth-1))
	case 4:
		if g.r.Intn(4) == 0 {
			return ast.When(g.expr(1, 2), ast.Fail())
		}
		return g.write()
	default:
		if len(g.vars) > 0 && g.r.Intn(2) == 0 {
			v := g.vars[g.r.Intn(len(g.vars))]
			return ast.Set(v.name, g.expr(v.w, 2))
		}
		return g.write()
	}
}

func (g *gen) write() *ast.Node {
	reg := g.reg()
	if g.r.Intn(4) == 0 {
		return ast.Wr1(reg.name, g.expr(reg.w, 2))
	}
	return ast.Wr0(reg.name, g.expr(reg.w, 2))
}
