package bench

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"

	"cuttlego/internal/native"
)

// TestNativeTierReport runs the BENCH_4 generator on a small design with a
// short window and checks the report invariants: digest parity across all
// engines, a real cold-compile latency, and valid JSON output.
func TestNativeTierReport(t *testing.T) {
	opts := Options{Cycles: 2_000, Designs: []string{"collatz"}}
	dir := t.TempDir()
	rep, err := MeasureNative(context.Background(), opts, dir)
	if err != nil {
		t.Fatalf("MeasureNative: %v", err)
	}
	if rep.Incomplete {
		t.Fatalf("report incomplete: %+v", rep)
	}
	if rep.Schema != "cuttlego-native/v1" || rep.Toolchain == "" {
		t.Fatalf("bad header: schema=%q toolchain=%q", rep.Schema, rep.Toolchain)
	}
	if len(rep.Compiles) != 1 || rep.Compiles[0].ColdCompileMs <= 0 {
		t.Fatalf("compile economics missing: %+v", rep.Compiles)
	}
	if rep.Compiles[0].WarmCacheMs <= 0 || rep.Compiles[0].WarmCacheMs >= rep.Compiles[0].ColdCompileMs {
		t.Fatalf("warm lookup (%.2fms) should be positive and cheaper than cold build (%.2fms)",
			rep.Compiles[0].WarmCacheMs, rep.Compiles[0].ColdCompileMs)
	}
	if len(rep.Results) != 3 {
		t.Fatalf("want 3 engine rows, got %d", len(rep.Results))
	}
	digest := ""
	for _, r := range rep.Results {
		if r.Error != "" {
			t.Fatalf("row %s/%s failed: %s", r.Design, r.Engine, r.Error)
		}
		if digest == "" {
			digest = r.StateDigest
		} else if r.StateDigest != digest {
			t.Fatalf("digest mismatch: %s has %s, want %s", r.Engine, r.StateDigest, digest)
		}
	}

	var buf bytes.Buffer
	if err := EncodeNative(&buf, rep); err != nil {
		t.Fatalf("EncodeNative: %v", err)
	}
	var back NativeReport
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}

	var tbl bytes.Buffer
	RenderNative(&tbl, rep)
	if !strings.Contains(tbl.String(), "compile cache") {
		t.Fatalf("rendered table missing compile-cache block:\n%s", tbl.String())
	}
}

// TestNativeVerifiesAgainstInterp runs the harness Verify path (which must
// not double-apply the embedded testbench) for the native tier against the
// reference interpreter on a design with external functions.
func TestNativeVerifiesAgainstInterp(t *testing.T) {
	c, err := native.OpenCache(t.TempDir(), native.CacheOptions{})
	if err != nil {
		t.Fatalf("OpenCache: %v", err)
	}
	bm, ok := Lookup("rv32i")
	if !ok {
		t.Fatal("rv32i not in catalogue")
	}
	if err := Verify(bm, EngNative(c), EngInterp(), 300); err != nil {
		t.Fatalf("Verify: %v", err)
	}
}
