package bench

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

func TestLatencyPercentiles(t *testing.T) {
	// 1..100ms, shuffled order must not matter (Latency sorts a copy).
	var samples []time.Duration
	for i := 100; i >= 1; i-- {
		samples = append(samples, time.Duration(i)*time.Millisecond)
	}
	got := Latency(samples)
	if got.Count != 100 {
		t.Fatalf("Count = %d, want 100", got.Count)
	}
	if got.P50Ms != 50 || got.P90Ms != 90 || got.P99Ms != 99 || got.MaxMs != 100 {
		t.Fatalf("p50/p90/p99/max = %v/%v/%v/%v, want 50/90/99/100", got.P50Ms, got.P90Ms, got.P99Ms, got.MaxMs)
	}
	if got.MeanMs < 50.4 || got.MeanMs > 50.6 {
		t.Fatalf("MeanMs = %v, want ~50.5", got.MeanMs)
	}
	// The input must be left untouched.
	if samples[0] != 100*time.Millisecond {
		t.Fatalf("Latency mutated its input")
	}
	if z := Latency(nil); z != (LatencyStats{}) {
		t.Fatalf("Latency(nil) = %+v, want zeros", z)
	}
	one := Latency([]time.Duration{3 * time.Millisecond})
	if one.P50Ms != 3 || one.P99Ms != 3 || one.MaxMs != 3 {
		t.Fatalf("single-sample stats = %+v, want all 3ms", one)
	}
}

func TestSwarmMemoryAmplify(t *testing.T) {
	m := SwarmMemory{
		BaselineHeapBytes: 1 << 20,
		SessionsHeapBytes: 1<<20 + 100*1000, // 100 sessions at ~1000 B
		ForksHeapBytes:    1<<20 + 100*1000 + 400*50,
	}
	m.Amplify(100, 400)
	if m.BytesPerSession != 1000 {
		t.Fatalf("BytesPerSession = %v, want 1000", m.BytesPerSession)
	}
	if m.BytesPerFork != 50 {
		t.Fatalf("BytesPerFork = %v, want 50", m.BytesPerFork)
	}
	if m.ForkAmplification != 0.05 {
		t.Fatalf("ForkAmplification = %v, want 0.05", m.ForkAmplification)
	}

	// Heap that did not grow (GC reclaimed more than the forks cost) must
	// not produce negative or NaN derived values.
	shrunk := SwarmMemory{BaselineHeapBytes: 2 << 20, SessionsHeapBytes: 1 << 20, ForksHeapBytes: 1 << 20}
	shrunk.Amplify(10, 10)
	if shrunk.BytesPerSession != 0 || shrunk.BytesPerFork != 0 || shrunk.ForkAmplification != 0 {
		t.Fatalf("shrinking heap produced %+v, want zeros", shrunk)
	}
	var zero SwarmMemory
	zero.Amplify(0, 0)
	if zero.ForkAmplification != 0 {
		t.Fatalf("zero-division guard failed: %+v", zero)
	}
}

func TestEncodeSwarmSetsSchema(t *testing.T) {
	var buf bytes.Buffer
	if err := EncodeSwarm(&buf, SwarmReport{Design: "collatz", Sessions: 3}); err != nil {
		t.Fatalf("EncodeSwarm: %v", err)
	}
	var got SwarmReport
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.Schema != SwarmSchema {
		t.Fatalf("Schema = %q, want %q", got.Schema, SwarmSchema)
	}
	if got.Design != "collatz" || got.Sessions != 3 {
		t.Fatalf("round trip lost fields: %+v", got)
	}
}
