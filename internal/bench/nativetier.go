// The native-tier report: the AOT-compiled execution tier timed against the
// in-process Cuttlesim engines on the acceptance designs, plus the compile
// economics (cold go-build latency, warm cache-hit latency) that decide
// when promoting a hot session to the native tier pays off. The JSON form
// is the BENCH_4 artifact; the text form is kbench -compile-cache output.
//
// As with the scaling report (BENCH_3), cells are measured sequentially and
// the report records GOMAXPROCS and NumCPU: on a one-core host the native
// subprocess and the supervisor share the core, so native wins look smaller
// than they are on real hardware. The toolchain version is recorded because
// the compile latencies are a property of the go compiler as much as of the
// designs.
package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"text/tabwriter"
	"time"

	"cuttlego/internal/cuttlesim"
	"cuttlego/internal/native"
)

// NativeDesigns is the default design set: the two acceptance-gate
// headliners.
var NativeDesigns = []string{"rv32i", "fft"}

// NativeResult is one (design, engine) timing row.
type NativeResult struct {
	Design       string  `json:"design"`
	Engine       string  `json:"engine"`
	Cycles       uint64  `json:"cycles"`
	NsPerCycle   float64 `json:"ns_per_cycle"`
	CyclesPerSec float64 `json:"cycles_per_sec"`
	StateDigest  string  `json:"state_digest,omitempty"`
	// SpeedupVsBestInterp is this row's throughput relative to the fastest
	// in-process engine on the same design (>1 means native won).
	SpeedupVsBestInterp float64 `json:"speedup_vs_best_interp,omitempty"`
	Error               string  `json:"error,omitempty"`
}

// NativeCompile is one design's compile-cache economics.
type NativeCompile struct {
	Design string `json:"design"`
	// CacheKey is the digest key the binary is stored under.
	CacheKey string `json:"cache_key"`
	// ColdCompileMs is the go-build wall time on a cache miss.
	ColdCompileMs float64 `json:"cold_compile_ms"`
	// WarmCacheMs is the lookup wall time on a cache hit (including the
	// integrity reread of the binary).
	WarmCacheMs float64 `json:"warm_cache_ms"`
	Error       string  `json:"error,omitempty"`
}

// NativeReport is the BENCH_4 export document.
type NativeReport struct {
	Schema     string          `json:"schema"`
	Window     uint64          `json:"window_cycles"`
	GOMAXPROCS int             `json:"gomaxprocs"`
	NumCPU     int             `json:"num_cpu"`
	Toolchain  string          `json:"toolchain"`
	Incomplete bool            `json:"incomplete,omitempty"`
	Compiles   []NativeCompile `json:"compiles"`
	Results    []NativeResult  `json:"results"`
}

// nativeCells returns the engine grid: the native tier against the two
// Cuttlesim backends it must beat (the closure and bytecode engines at the
// static optimization level). interp marks the in-process baselines the
// speedup column is computed against.
func nativeCells(c *native.Cache) []struct {
	eng    Engine
	interp bool
} {
	return []struct {
		eng    Engine
		interp bool
	}{
		{EngNative(c), false},
		{EngCuttlesim(cuttlesim.LStatic, cuttlesim.Closure), true},
		{EngCuttlesim(cuttlesim.LStatic, cuttlesim.Bytecode), true},
	}
}

// WriteNativeJSON measures the native-tier grid and writes the report as
// indented JSON — the generator behind BENCH_4.json. cacheDir roots the
// compile cache; a fresh directory gives honest cold-compile numbers.
func WriteNativeJSON(w io.Writer, opts Options, cacheDir string) error {
	return WriteNativeJSONCtx(context.Background(), w, opts, cacheDir)
}

// WriteNativeJSONCtx is WriteNativeJSON under a context. The report is
// always written and always valid JSON; failed cells keep their slots with
// Error set. Digest parity between the native tier and the in-process
// engines on each design is enforced unconditionally.
func WriteNativeJSONCtx(ctx context.Context, w io.Writer, opts Options, cacheDir string) error {
	rep, firstErr := MeasureNative(ctx, opts, cacheDir)
	if err := EncodeNative(w, rep); err != nil {
		return err
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	return firstErr
}

// EncodeNative writes an already-measured report as indented JSON.
func EncodeNative(w io.Writer, rep NativeReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// NativeTier renders the grid as a table: per design, ns/cycle rows plus
// the compile-cache economics.
func NativeTier(w io.Writer, opts Options, cacheDir string) error {
	rep, firstErr := MeasureNative(context.Background(), opts, cacheDir)
	RenderNative(w, rep)
	return firstErr
}

// RenderNative writes an already-measured report as a table.
func RenderNative(w io.Writer, rep NativeReport) {
	fmt.Fprintf(w, "Native tier: %d-cycle window, GOMAXPROCS=%d, NumCPU=%d, %s\n",
		rep.Window, rep.GOMAXPROCS, rep.NumCPU, rep.Toolchain)
	if rep.GOMAXPROCS == 1 {
		fmt.Fprintf(w, "note: single-core host; supervisor and subprocess share the core\n")
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	last := ""
	for _, r := range rep.Results {
		if r.Design != last {
			fmt.Fprintf(tw, "\n%s\tns/cycle\tMcycles/s\tspeedup\n", r.Design)
			last = r.Design
		}
		if r.Error != "" {
			fmt.Fprintf(tw, "  %s\tERROR: %s\t\t\n", r.Engine, r.Error)
			continue
		}
		fmt.Fprintf(tw, "  %s\t%.1f\t%.2f\t%.2fx\n",
			r.Engine, r.NsPerCycle, r.CyclesPerSec/1e6, r.SpeedupVsBestInterp)
	}
	fmt.Fprintf(tw, "\ncompile cache\tcold ms\twarm ms\tkey\n")
	for _, cr := range rep.Compiles {
		if cr.Error != "" {
			fmt.Fprintf(tw, "  %s\tERROR: %s\t\t\n", cr.Design, cr.Error)
			continue
		}
		fmt.Fprintf(tw, "  %s\t%.1f\t%.2f\t%s\n", cr.Design, cr.ColdCompileMs, cr.WarmCacheMs, cr.CacheKey)
	}
	tw.Flush()
}

// MeasureNative runs the grid and assembles the report. The compile pass
// runs first (so engine measurements below are all warm-cache launches),
// recording the cold build and warm lookup latency per design.
func MeasureNative(ctx context.Context, opts Options, cacheDir string) (NativeReport, error) {
	rep := NativeReport{
		Schema:     "cuttlego-native/v1",
		Window:     opts.Cycles,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Toolchain:  runtime.Version(),
	}
	cache, err := native.OpenCache(cacheDir, native.CacheOptions{})
	if err != nil {
		return rep, err
	}
	designs := opts.Designs
	if len(designs) == 0 {
		designs = NativeDesigns
	}
	cells := nativeCells(cache)
	var firstErr error
	for _, name := range designs {
		bm, ok := Lookup(name)
		if !ok {
			return rep, fmt.Errorf("bench: unknown design %q (catalogue: %v)", name, Names())
		}

		cr := NativeCompile{Design: name}
		inst := bm.New()
		cold, err := cache.Build(inst.Design, inst.Native)
		if err != nil {
			cr.Error = err.Error()
			rep.Incomplete = true
			if firstErr == nil {
				firstErr = err
			}
		} else {
			cr.CacheKey = cold.Key
			cr.ColdCompileMs = float64(cold.CompileTime.Nanoseconds()) / 1e6
			warmStart := time.Now()
			if _, err := cache.Build(inst.Design, inst.Native); err == nil {
				cr.WarmCacheMs = float64(time.Since(warmStart).Nanoseconds()) / 1e6
			}
			if cold.Cached {
				// Pre-warmed cache directory: there was no cold build to time.
				cr.ColdCompileMs = 0
			}
		}
		rep.Compiles = append(rep.Compiles, cr)

		rows := make([]NativeResult, 0, len(cells))
		bestInterp := 0.0
		for _, c := range cells {
			r := NativeResult{Design: name, Engine: c.eng.Name}
			if err := ctx.Err(); err != nil {
				r.Error = "not run: cancelled"
				rep.Incomplete = true
				rows = append(rows, r)
				continue
			}
			m, err := Measure(bm, c.eng, opts.Cycles)
			if err != nil {
				r.Error = err.Error()
				rep.Incomplete = true
				if firstErr == nil {
					firstErr = err
				}
				rows = append(rows, r)
				continue
			}
			r.Cycles = m.Cycles
			if m.Cycles > 0 {
				r.NsPerCycle = float64(m.Elapsed.Nanoseconds()) / float64(m.Cycles)
			}
			r.CyclesPerSec = m.CPS()
			r.StateDigest = fmt.Sprintf("%016x", m.Digest)
			if c.interp && r.NsPerCycle > 0 && (bestInterp == 0 || r.NsPerCycle < bestInterp) {
				bestInterp = r.NsPerCycle
			}
			rows = append(rows, r)
		}
		for i := range rows {
			if rows[i].Error == "" && rows[i].NsPerCycle > 0 && bestInterp > 0 {
				rows[i].SpeedupVsBestInterp = bestInterp / rows[i].NsPerCycle
			}
		}
		if err := checkNativeDigests(name, rows); err != nil {
			rep.Incomplete = true
			if firstErr == nil {
				firstErr = err
			}
		}
		rep.Results = append(rep.Results, rows...)
	}
	return rep, firstErr
}

// checkNativeDigests enforces digest parity across every row of one design:
// a native binary that lands on a different final state than the in-process
// engines disqualifies the report.
func checkNativeDigests(design string, rows []NativeResult) error {
	ref := NativeResult{}
	for _, r := range rows {
		if r.Error != "" || r.StateDigest == "" {
			continue
		}
		if ref.StateDigest == "" {
			ref = r
			continue
		}
		if r.StateDigest != ref.StateDigest {
			return fmt.Errorf("bench: native digest mismatch on %s: %s has %s, %s has %s",
				design, ref.Engine, ref.StateDigest, r.Engine, r.StateDigest)
		}
	}
	return nil
}
