// Package bench is the evaluation harness: it assembles the paper's
// benchmark suite (Table 1) and regenerates every table and figure of the
// evaluation section — Figure 1 (Cuttlesim vs the circuit-level simulator),
// Figure 2 (dynamic Kôika-style vs static Bluespec-style RTL), Figure 3
// (engine/backend sensitivity, standing in for the paper's GCC/Clang
// sweep), and the §3.2–3.3 optimization-ladder ablation.
//
// Absolute numbers depend on the host; the claims under reproduction are
// the shapes: who wins, by roughly what factor, and where the advantage
// narrows.
package bench

import (
	"fmt"
	"time"

	"cuttlego/internal/ast"
	"cuttlego/internal/circuit"
	"cuttlego/internal/cuttlesim"
	"cuttlego/internal/dsp"
	"cuttlego/internal/gomodel"
	"cuttlego/internal/interp"
	"cuttlego/internal/native"
	"cuttlego/internal/netopt"
	"cuttlego/internal/riscv"
	"cuttlego/internal/rtlsim"
	"cuttlego/internal/rvcore"
	"cuttlego/internal/sim"
	"cuttlego/internal/stm"
	"cuttlego/internal/workload"
)

// Instance is one freshly built benchmark design plus its testbench (nil
// when the design is self-driving). Engines must not share instances: the
// testbench and external functions carry per-instance state.
//
// Native, when non-nil, carries the gomodel servo bindings that serialize
// this instance's external world (memory images, testbench drain) into a
// generated program, so the native execution tier can embed the whole
// harness in a compiled binary. Designs without external functions or
// testbenches need no bindings.
type Instance struct {
	Design *ast.Design
	Bench  sim.Testbench
	Native *gomodel.Bindings
}

// Benchmark describes one Table 1 row.
type Benchmark struct {
	// Name matches the paper's benchmark names.
	Name string
	// Description is the Table 1 annotation.
	Description string
	// Meta: the design is produced by meta-programming (code generation).
	Meta bool
	// Comb: single combinational rule, no scheduling or conflicts.
	Comb bool
	// Workload describes what runs on the design.
	Workload string
	// New builds a fresh instance.
	New func() Instance
}

// Suite returns the Table 1 benchmarks. The primes limit scales the
// processor workloads (the paper runs to completion; we default to a
// fixed simulation window instead, see Table1).
func Suite() []Benchmark {
	return []Benchmark{
		{
			Name:        "collatz",
			Description: "Trivial state machine",
			Workload:    "restarting Collatz trajectories",
			New: func() Instance {
				return Instance{Design: CollatzBench(27).MustCheck()}
			},
		},
		{
			Name:        "fir",
			Description: "Finite impulse response filter",
			Meta:        true,
			Comb:        true,
			Workload:    "self-driving LCG sample stream",
			New: func() Instance {
				return Instance{Design: FIRBench().MustCheck()}
			},
		},
		{
			Name:        "fft",
			Description: "Part of a Fast Fourier Transform",
			Meta:        true,
			Comb:        true,
			Workload:    "feedback-driven butterfly network",
			New: func() Instance {
				return Instance{Design: FFTBench(16).MustCheck()}
			},
		},
		{
			Name:        "rv32i",
			Description: "Small RISCV core (branch predictor: pc + 4)",
			Workload:    "primes",
			New:         func() Instance { return coreInstance(rvcore.RV32I()) },
		},
		{
			Name:        "rv32e",
			Description: "Embedded variant of rv32i (predictor: pc + 4)",
			Workload:    "primes",
			New:         func() Instance { return coreInstance(rvcore.RV32E()) },
		},
		{
			Name:        "rv32i-bp",
			Description: "rv32i with a better branch predictor (btb + bht)",
			Workload:    "primes",
			New:         func() Instance { return coreInstance(rvcore.RV32IBP()) },
		},
		{
			Name:        "rv32i-mc",
			Description: "Dual-core variant of rv32i (predictor: pc + 4)",
			Workload:    "primes",
			New: func() Instance {
				mem := riscv.NewMemory()
				mem.LoadWords(0, workload.Primes(500))
				d, cores := rvcore.BuildMC("rv32i-mc", mem)
				d.MustCheck()
				return Instance{Design: d, Bench: rvcore.NewBench(cores...), Native: rvcore.NativeBindings(cores...)}
			},
		},
		{
			Name:        "idle",
			Description: "Idle-heavy producer/consumer chain (slow producer)",
			Meta:        true,
			Workload:    "one token per 64 cycles through 48 guarded stages",
			New: func() Instance {
				return Instance{Design: IdleBench(48, 6).MustCheck()}
			},
		},
	}
}

func coreInstance(cfg rvcore.Config) Instance {
	mem := riscv.NewMemory()
	mem.LoadWords(0, workload.Primes(500))
	d, core := rvcore.Build(cfg, mem)
	d.MustCheck()
	return Instance{Design: d, Bench: rvcore.NewBench(core), Native: rvcore.NativeBindings(core)}
}

// CollatzBench wraps the collatz design with a restart rule so timing runs
// never idle: when a trajectory converges, the next seed is injected.
func CollatzBench(seed uint64) *ast.Design {
	d := stm.Collatz(seed)
	d.Reg("seed", ast.Bits(32), seed+1)
	d.Rule("restart",
		ast.Guard(ast.Eq(ast.Rd0("done"), ast.C(1, 1))),
		ast.Wr1("x", ast.Rd0("seed")),
		ast.Wr0("seed", ast.Add(ast.Rd0("seed"), ast.C(32, 1))),
		ast.Wr0("done", ast.C(1, 0)),
	)
	return d
}

// FIRBench is the FIR design plus a self-driving input rule (a 32-bit LCG),
// so no per-cycle testbench traffic disturbs the measurement.
func FIRBench() *ast.Design {
	d := dsp.FIR([]uint32{3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9, 3})
	d.Rule("drive",
		ast.Wr0("in", ast.Add(
			ast.Mul(ast.Rd0("in"), ast.C(32, 1103515245)),
			ast.C(32, 12345))),
	)
	return d
}

// FFTBench is the FFT design plus a feedback rule perturbing the inputs
// from the previous outputs.
func FFTBench(n int) *ast.Design {
	d := dsp.FFT(n)
	var items []*ast.Node
	for i := 0; i < n; i++ {
		// Port-1 reads observe the butterfly outputs written this cycle.
		items = append(items,
			ast.Wr0(fmt.Sprintf("xr_%d", i),
				ast.Add(ast.Rd1(fmt.Sprintf("yr_%d", i)), ast.C(32, uint64(i*2+1)))),
			ast.Wr0(fmt.Sprintf("xi_%d", i),
				ast.Xor(ast.Rd1(fmt.Sprintf("yi_%d", i)), ast.C(32, uint64(i*17+3)))))
	}
	d.Rule("drive", items...)
	return d
}

// IdleBench builds the activity benchmark: a producer ticks a counter every
// cycle and releases a token into a chain of guarded consumer stages only
// once per 2^periodLog2 cycles, so at any moment almost every stage is
// stalled on its guard. Engines that re-execute every rule every cycle pay
// for all the stages; the activity scheduler parks them and pays only for
// the producer, the release guard, and the one or two stages the token is
// actually traversing. This is the regime the quiescence/skipping machinery
// targets — hardware spends most of its time waiting.
func IdleBench(stages, periodLog2 int) *ast.Design {
	d := ast.NewDesign(fmt.Sprintf("idle%d", stages))
	d.Reg("tick", ast.Bits(32), 0)
	for i := 0; i <= stages; i++ {
		d.Reg(fmt.Sprintf("tok%d", i), ast.Bits(1), 0)
	}
	for i := 0; i < stages; i++ {
		d.Reg(fmt.Sprintf("acc%d", i), ast.Bits(16), 0)
	}
	d.Reg("done", ast.Bits(32), 0)
	// release is scheduled before produce so its rd0 of tick observes the
	// committed counter instead of conflicting with this cycle's increment.
	d.Rule("release",
		ast.Guard(ast.Eq(ast.Slice(ast.Rd0("tick"), 0, periodLog2), ast.C(periodLog2, 0))),
		ast.Wr0("tok0", ast.C(1, 1)))
	d.Rule("produce", ast.Wr0("tick", ast.Add(ast.Rd0("tick"), ast.C(32, 1))))
	for i := 0; i < stages; i++ {
		tok, next, acc := fmt.Sprintf("tok%d", i), fmt.Sprintf("tok%d", i+1), fmt.Sprintf("acc%d", i)
		d.Rule(fmt.Sprintf("stage%d", i),
			ast.Guard(ast.Eq(ast.Rd0(tok), ast.C(1, 1))),
			ast.Wr0(tok, ast.C(1, 0)),
			ast.Wr0(next, ast.C(1, 1)),
			ast.Wr0(acc, ast.Add(ast.Rd0(acc), ast.C(16, 1))))
	}
	last := fmt.Sprintf("tok%d", stages)
	d.Rule("drain",
		ast.Guard(ast.Eq(ast.Rd0(last), ast.C(1, 1))),
		ast.Wr0(last, ast.C(1, 0)),
		ast.Wr0("done", ast.Add(ast.Rd0("done"), ast.C(32, 1))))
	return d
}

// StateStress builds the ablation stress design: a large register file
// (nregs registers) touched only sparsely by a handful of rules. Designs
// like this maximize the relative cost of the transaction machinery —
// clearing, copying, and committing logs over hundreds of registers — so
// they showcase what each §3.2–3.3 refinement buys. The paper's narrative
// ("models spend inordinate amounts of time checking and copying read-write
// sets, copying data between logs, and committing results") is about
// exactly this regime.
func StateStress(nregs, nrules int) *ast.Design {
	d := ast.NewDesign(fmt.Sprintf("stress%d", nregs))
	for i := 0; i < nregs; i++ {
		d.Reg(fmt.Sprintf("r%d", i), ast.Bits(32), uint64(i))
	}
	for r := 0; r < nrules; r++ {
		a := fmt.Sprintf("r%d", r*2%nregs)
		b := fmt.Sprintf("r%d", (r*2+1)%nregs)
		d.Rule(fmt.Sprintf("rule%d", r),
			ast.Let("va", ast.Rd0(a),
				ast.Wr0(a, ast.Add(ast.V("va"), ast.C(32, 1))),
				ast.Wr0(b, ast.Xor(ast.Rd0(b), ast.V("va"))),
			),
		)
	}
	return d
}

// ParallelStress builds the intra-design parallelism stress benchmark:
// nrules completely independent heavy rules, each folding a long dependent
// operation chain (depth let-bound steps of multiply/xor/add) over its own
// private pair of registers. The conflict graph is edgeless, so the
// parallel Cuttlesim engine runs all rules in one wave, and the per-rule
// work is deep enough that striping the wave across cores dominates the
// barrier — the regime the conflict-group machinery targets, complementing
// the wide-level regime fft64 provides for the BSP rtlsim backend.
func ParallelStress(nrules, depth int) *ast.Design {
	d := ast.NewDesign(fmt.Sprintf("pstress%d", nrules))
	for r := 0; r < nrules; r++ {
		d.Reg(fmt.Sprintf("a%d", r), ast.Bits(32), uint64(r*2+1))
		d.Reg(fmt.Sprintf("s%d", r), ast.Bits(32), 0)
	}
	for r := 0; r < nrules; r++ {
		a, s := fmt.Sprintf("a%d", r), fmt.Sprintf("s%d", r)
		body := func(k int) *ast.Node { return ast.V(fmt.Sprintf("v%d", k)) }
		// vK+1 = (vK * 2654435761) xor (vK + r'); deep sequential chain, no
		// common subexpressions for netopt to collapse.
		inner := []*ast.Node{
			ast.Wr0(a, body(depth)),
			ast.Wr0(s, ast.Add(ast.Rd0(s), ast.Xor(body(depth), body(0)))),
		}
		for k := depth; k >= 1; k-- {
			step := ast.Xor(
				ast.Mul(body(k-1), ast.C(32, 2654435761)),
				ast.Add(body(k-1), ast.C(32, uint64(r*31+k))))
			inner = []*ast.Node{ast.Let(fmt.Sprintf("v%d", k), step, inner...)}
		}
		d.Rule(fmt.Sprintf("mix%d", r),
			ast.Let("v0", ast.Rd0(a), inner...))
	}
	return d
}

// Engine identifies one simulation pipeline configuration.
type Engine struct {
	Name string
	Make func(Instance) (sim.Engine, error)
	// SelfDriving marks engines that embed the instance's testbench (the
	// native tier compiles it into the binary): the harness must not apply
	// inst.Bench on top, and may advance the engine in batches.
	SelfDriving bool
}

// EngNative builds the AOT native-tier engine spec: the design (plus its
// serialized testbench and memory images) is compiled to a standalone
// binary through the given cache and supervised as a subprocess. Compile
// time is paid inside Make, outside the timed window — warm runs reuse the
// cached binary.
func EngNative(c *native.Cache) Engine {
	return Engine{
		Name:        "native",
		SelfDriving: true,
		Make: func(inst Instance) (sim.Engine, error) {
			return c.Engine(inst.Design, inst.Native)
		},
	}
}

// EngCuttlesim builds a Cuttlesim engine spec.
func EngCuttlesim(level cuttlesim.Level, backend cuttlesim.Backend) Engine {
	return Engine{
		Name: fmt.Sprintf("cuttlesim(%v,%v)", level, backend),
		Make: func(inst Instance) (sim.Engine, error) {
			return cuttlesim.New(inst.Design, cuttlesim.Options{Level: level, Backend: backend})
		},
	}
}

// EngRTL builds a circuit-level engine spec (the Verilator substitute).
func EngRTL(style circuit.Style, backend rtlsim.Backend) Engine {
	return EngRTLOpt(style, backend, false)
}

// EngRTLOpt builds a circuit-level engine spec, optionally running the
// netopt pipeline (dead-net elimination, constant sweep, CSE) on the
// netlist first. The optimized fused configuration is the strengthened
// Verilator stand-in the honest Figure 1 comparison runs against.
func EngRTLOpt(style circuit.Style, backend rtlsim.Backend, optimize bool) Engine {
	name := fmt.Sprintf("rtlsim(%v,%v)", style, backend)
	if optimize {
		name = fmt.Sprintf("rtlsim(%v,%v,opt)", style, backend)
	}
	return Engine{
		Name: name,
		Make: func(inst Instance) (sim.Engine, error) {
			ckt, err := circuit.Compile(inst.Design, style)
			if err != nil {
				return nil, err
			}
			if optimize {
				ckt = netopt.MustOptimize(ckt)
			}
			return rtlsim.New(ckt, rtlsim.Options{Backend: backend})
		},
	}
}

// EngCuttlesimPar builds a parallel Cuttlesim engine spec: conflict-free
// rule groups at LStatic executed on a pool of the given width. workers of
// 1 is the plain sequential static engine — the natural w=1 point of a
// scaling curve.
func EngCuttlesimPar(backend cuttlesim.Backend, workers int) Engine {
	return Engine{
		Name: fmt.Sprintf("cuttlesim-par(%v,w%d)", backend, workers),
		Make: func(inst Instance) (sim.Engine, error) {
			return cuttlesim.New(inst.Design, cuttlesim.Options{
				Level: cuttlesim.LStatic, Backend: backend, Workers: workers,
			})
		},
	}
}

// EngRTLPar builds a parallel rtlsim engine spec: BSP-sharded levelized
// evaluation of the Kôika-style netlist (netopt-optimized when optimize is
// set) on a pool of the given width. workers of 1 is the sequential fused
// backend.
func EngRTLPar(optimize bool, workers int) Engine {
	name := fmt.Sprintf("rtlsim-par(koika,w%d)", workers)
	if optimize {
		name = fmt.Sprintf("rtlsim-par(koika,opt,w%d)", workers)
	}
	return Engine{
		Name: name,
		Make: func(inst Instance) (sim.Engine, error) {
			ckt, err := circuit.Compile(inst.Design, circuit.StyleKoika)
			if err != nil {
				return nil, err
			}
			if optimize {
				ckt = netopt.MustOptimize(ckt)
			}
			return rtlsim.New(ckt, rtlsim.Options{Backend: rtlsim.Fused, Workers: workers})
		},
	}
}

// EngInterp is the reference interpreter spec.
func EngInterp() Engine {
	return Engine{
		Name: "interp",
		Make: func(inst Instance) (sim.Engine, error) { return interp.New(inst.Design) },
	}
}

// Measurement is one timing result.
type Measurement struct {
	Benchmark string
	Engine    string
	Cycles    uint64
	Elapsed   time.Duration
	// Digest hashes the engine's final architectural state; engines that ran
	// the same benchmark over the same window must agree on it.
	Digest uint64
}

// CPS returns simulated cycles per wall-clock second.
func (m Measurement) CPS() float64 {
	if m.Elapsed <= 0 {
		return 0
	}
	return float64(m.Cycles) / m.Elapsed.Seconds()
}

// Measure times one engine running one benchmark for the given number of
// cycles (plus a 10% warmup that is not counted).
func Measure(bm Benchmark, eng Engine, cycles uint64) (Measurement, error) {
	inst := bm.New()
	e, err := eng.Make(inst)
	if err != nil {
		return Measurement{}, fmt.Errorf("bench %s / %s: %w", bm.Name, eng.Name, err)
	}
	defer closeEngine(e)
	tb := inst.Bench
	if tb == nil || eng.SelfDriving {
		tb = sim.NopBench{}
	}
	warm := cycles / 10
	if eng.SelfDriving {
		advanceCycles(e, warm)
	} else {
		runCycles(e, tb, warm)
	}
	start := time.Now()
	if eng.SelfDriving {
		advanceCycles(e, cycles)
	} else {
		runCycles(e, tb, cycles)
	}
	elapsed := time.Since(start)
	return Measurement{Benchmark: bm.Name, Engine: eng.Name, Cycles: cycles,
		Elapsed: elapsed, Digest: StateDigest(e)}, nil
}

// closeEngine releases engines that own resources (the parallel backends'
// worker pools); harness code builds engines in bulk, so relying on
// finalizers alone would accumulate idle goroutines.
func closeEngine(e sim.Engine) {
	if c, ok := e.(interface{ Close() error }); ok {
		c.Close()
	}
}

// StateDigest hashes the engine's full architectural state (FNV-1a over
// register widths and values), so cross-engine agreement can be asserted
// from a single number at the end of a run. It is sim.StateDigest, kept
// here for the existing call sites; the simulation daemon uses the sim
// package's copy so snapshot digests and engine digests agree.
func StateDigest(e sim.Engine) uint64 { return sim.StateDigest(e) }

// runCycles drives the engine unconditionally for n cycles (benchmarks
// never stop on testbench completion — a halted core keeps spinning).
func runCycles(e sim.Engine, tb sim.Testbench, n uint64) {
	for i := uint64(0); i < n; i++ {
		tb.BeforeCycle(e)
		e.Cycle()
		tb.AfterCycle(e)
	}
}

// advanceCycles drives a self-driving engine: one batched Advance when the
// engine supports it (the native tier turns the whole window into a single
// subprocess round trip), a plain cycle loop otherwise.
func advanceCycles(e sim.Engine, n uint64) {
	if a, ok := e.(sim.Advancer); ok {
		a.Advance(n)
		return
	}
	runCycles(e, sim.NopBench{}, n)
}

// HaltCycles runs a fresh instance under Cuttlesim until its bench halts
// (or budget runs out), returning the cycle count. Used for the Table 1
// "Cycles" column on processor workloads.
func HaltCycles(bm Benchmark, budget uint64) (uint64, bool) {
	inst := bm.New()
	e, err := cuttlesim.New(inst.Design, cuttlesim.DefaultOptions())
	if err != nil {
		return 0, false
	}
	if inst.Bench == nil {
		return budget, false
	}
	n := sim.Run(e, inst.Bench, budget)
	return n, n < budget
}

// Verify runs every benchmark briefly on two engines and compares final
// architectural state; the harness refuses to time engines that disagree.
func Verify(bm Benchmark, a, b Engine, cycles uint64) error {
	ia, ib := bm.New(), bm.New()
	ea, err := a.Make(ia)
	if err != nil {
		return err
	}
	defer closeEngine(ea)
	eb, err := b.Make(ib)
	if err != nil {
		return err
	}
	defer closeEngine(eb)
	tba, tbb := ia.Bench, ib.Bench
	if tba == nil || a.SelfDriving {
		tba = sim.NopBench{}
	}
	if tbb == nil || b.SelfDriving {
		tbb = sim.NopBench{}
	}
	for i := uint64(0); i < cycles; i++ {
		tba.BeforeCycle(ea)
		ea.Cycle()
		tba.AfterCycle(ea)
		tbb.BeforeCycle(eb)
		eb.Cycle()
		tbb.AfterCycle(eb)
	}
	sa, sb := sim.StateOf(ea), sim.StateOf(eb)
	for i := range sa {
		if sa[i] != sb[i] {
			return fmt.Errorf("bench %s: %s and %s disagree on register %s (%v vs %v)",
				bm.Name, a.Name, b.Name, ia.Design.Registers[i].Name, sa[i], sb[i])
		}
	}
	return nil
}
