package bench_test

import (
	"bytes"
	"encoding/json"
	"testing"

	"cuttlego/internal/bench"
	"cuttlego/internal/cuttlesim"
	"cuttlego/internal/interp"
	"cuttlego/internal/sim"
)

// TestActivityLockstepCatalog is the soundness gate for the activity
// scheduler: on every catalogued design (Table 1 suite + extras), LActivity
// must match the reference interpreter cycle-for-cycle — register state and
// rule firings — and must report exactly the same per-rule attempt and
// commit counts as LStatic, with skipped aborts on top.
func TestActivityLockstepCatalog(t *testing.T) {
	for _, bm := range append(bench.Suite(), bench.Extras()...) {
		bm := bm
		t.Run(bm.Name, func(t *testing.T) {
			refInst := bm.New()
			ref, err := interp.New(refInst.Design)
			if err != nil {
				t.Fatal(err)
			}
			type engine struct {
				name string
				sim  *cuttlesim.Simulator
				tb   sim.Testbench
			}
			var engines []engine
			for _, cfg := range []cuttlesim.Options{
				{Level: cuttlesim.LStatic, Backend: cuttlesim.Closure, Profile: true},
				{Level: cuttlesim.LActivity, Backend: cuttlesim.Closure, Profile: true},
				{Level: cuttlesim.LActivity, Backend: cuttlesim.Bytecode, Profile: true},
			} {
				inst := bm.New()
				s, err := cuttlesim.New(inst.Design, cfg)
				if err != nil {
					t.Fatal(err)
				}
				tb := inst.Bench
				if tb == nil {
					tb = sim.NopBench{}
				}
				engines = append(engines,
					engine{cfg.Level.String() + "/" + cfg.Backend.String(), s, tb})
			}
			refTB := refInst.Bench
			if refTB == nil {
				refTB = sim.NopBench{}
			}
			d := refInst.Design
			for cycle := 0; cycle < 300; cycle++ {
				refTB.BeforeCycle(ref)
				ref.Cycle()
				refTB.AfterCycle(ref)
				want := sim.StateOf(ref)
				for _, e := range engines {
					e.tb.BeforeCycle(e.sim)
					e.sim.Cycle()
					e.tb.AfterCycle(e.sim)
					got := sim.StateOf(e.sim)
					for i := range want {
						if got[i] != want[i] {
							t.Fatalf("cycle %d: %s reg %s = %v, interp has %v",
								cycle, e.name, d.Registers[i].Name, got[i], want[i])
						}
					}
					for _, r := range d.Rules {
						if e.sim.RuleFired(r.Name) != ref.RuleFired(r.Name) {
							t.Fatalf("cycle %d: %s rule %s fired=%v, interp disagrees",
								cycle, e.name, r.Name, e.sim.RuleFired(r.Name))
						}
					}
				}
			}
			base := engines[0].sim.RuleStats()
			for _, e := range engines[1:] {
				stats := e.sim.RuleStats()
				for i := range base {
					if stats[i].Attempts != base[i].Attempts || stats[i].Commits != base[i].Commits {
						t.Errorf("%s rule %s: %d/%d attempts/commits, static has %d/%d",
							e.name, stats[i].Rule, stats[i].Attempts, stats[i].Commits,
							base[i].Attempts, base[i].Commits)
					}
					if stats[i].Skipped > stats[i].Attempts-stats[i].Commits {
						t.Errorf("%s rule %s: skipped %d exceeds aborts",
							e.name, stats[i].Rule, stats[i].Skipped)
					}
				}
			}
		})
	}
}

// The idle benchmark is the one the activity scheduler was built for: most
// rules park most of the time, yet the final state must be identical.
func TestIdleBenchActivityAgrees(t *testing.T) {
	bm, ok := bench.Lookup("idle")
	if !ok {
		t.Fatal("idle benchmark missing from catalogue")
	}
	ms, err := bench.Measure(bm, bench.EngCuttlesim(cuttlesim.LStatic, cuttlesim.Closure), 4000)
	if err != nil {
		t.Fatal(err)
	}
	ma, err := bench.Measure(bm, bench.EngCuttlesim(cuttlesim.LActivity, cuttlesim.Closure), 4000)
	if err != nil {
		t.Fatal(err)
	}
	if ms.Digest != ma.Digest {
		t.Fatalf("digest mismatch: static %016x vs activity %016x", ms.Digest, ma.Digest)
	}
	// Something actually moved through the pipeline.
	inst := bm.New()
	e, err := cuttlesim.New(inst.Design, cuttlesim.Options{Level: cuttlesim.LActivity, Profile: true})
	if err != nil {
		t.Fatal(err)
	}
	sim.Run(e, nil, 4000)
	if done := e.Reg("done").Val; done == 0 {
		t.Error("no token ever reached the drain stage")
	}
	var skipped uint64
	for _, st := range e.RuleStats() {
		skipped += st.Skipped
	}
	if skipped == 0 {
		t.Error("idle benchmark produced no skips")
	}
}

func TestWriteJSONDesignsFilterAndDigestCheck(t *testing.T) {
	var buf bytes.Buffer
	opts := bench.Options{Cycles: 500, Designs: []string{"collatz"}, DigestCheck: true}
	if err := bench.WriteJSON(&buf, opts, 2); err != nil {
		t.Fatalf("WriteJSON: %v\n%s", err, buf.String())
	}
	var rep bench.JSONReport
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) == 0 {
		t.Fatal("no results")
	}
	for _, r := range rep.Results {
		if r.Design != "collatz" {
			t.Errorf("unexpected design %q with filter", r.Design)
		}
		if r.StateDigest == "" {
			t.Errorf("engine %s: missing state digest", r.Engine)
		}
	}
	// Unknown names are rejected, not silently skipped.
	if err := bench.WriteJSON(&buf, bench.Options{Cycles: 10, Designs: []string{"nope"}}, 1); err == nil {
		t.Error("unknown design name accepted")
	}
}
