// The intra-design scaling report: the same designs timed across pool
// widths for both parallel engines (BSP-sharded rtlsim levels, conflict-
// free Cuttlesim rule groups) next to their sequential baselines. The
// JSON form is the BENCH_3 trajectory artifact; the text form is kbench
// -scaling output for humans.
//
// Unlike the grid export, scaling cells are always measured sequentially:
// the parallelism under test lives *inside* each engine, and running two
// pooled engines at once would have their workers contend for the same
// cores and corrupt both timings. The report records GOMAXPROCS and
// NumCPU so a consumer can tell a one-core host (where speedup > 1 is
// physically impossible) from a real scaling failure.
package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"text/tabwriter"

	"cuttlego/internal/circuit"
	"cuttlego/internal/cuttlesim"
	"cuttlego/internal/rtlsim"
)

// ScalingWorkerWidths is the pool-width sweep each parallel engine runs.
var ScalingWorkerWidths = []int{1, 2, 4, 8}

// ScalingDesigns is the default design set: the two Table 1 headliners the
// acceptance gate watches (rv32i, fft) plus the two regimes built for the
// parallel engines — fft64 (wide netlist levels for BSP sharding) and
// pstress (independent heavy rules for conflict-free waves).
var ScalingDesigns = []string{"rv32i", "fft", "fft64", "pstress"}

// ScalingResult is one (design, engine, workers) timing.
type ScalingResult struct {
	Design       string  `json:"design"`
	Engine       string  `json:"engine"`
	Workers      int     `json:"workers"`
	Cycles       uint64  `json:"cycles"`
	NsPerCycle   float64 `json:"ns_per_cycle"`
	CyclesPerSec float64 `json:"cycles_per_sec"`
	StateDigest  string  `json:"state_digest,omitempty"`
	// SpeedupVsBestSeq is this row's throughput relative to the fastest
	// sequential engine on the same design (>1 means the pool won).
	SpeedupVsBestSeq float64 `json:"speedup_vs_best_seq,omitempty"`
	Error            string  `json:"error,omitempty"`
}

// ScalingReport is the BENCH_3 export document.
type ScalingReport struct {
	Schema     string          `json:"schema"`
	Window     uint64          `json:"window_cycles"`
	GOMAXPROCS int             `json:"gomaxprocs"`
	NumCPU     int             `json:"num_cpu"`
	Incomplete bool            `json:"incomplete,omitempty"`
	Results    []ScalingResult `json:"results"`
}

// scalingCell is one grid entry: seq marks the sequential baselines the
// speedup column is computed against.
type scalingCell struct {
	eng     Engine
	workers int
	seq     bool
}

func scalingCells() []scalingCell {
	cells := []scalingCell{
		{EngCuttlesim(cuttlesim.LStatic, cuttlesim.Closure), 1, true},
		{EngCuttlesim(cuttlesim.LStatic, cuttlesim.Bytecode), 1, true},
		{EngRTLOpt(circuit.StyleKoika, rtlsim.Fused, true), 1, true},
	}
	for _, w := range ScalingWorkerWidths {
		cells = append(cells, scalingCell{EngCuttlesimPar(cuttlesim.Closure, w), w, false})
	}
	for _, w := range ScalingWorkerWidths {
		cells = append(cells, scalingCell{EngRTLPar(true, w), w, false})
	}
	return cells
}

// WriteScalingJSON measures the scaling grid and writes the report as
// indented JSON — the generator behind BENCH_3.json.
func WriteScalingJSON(w io.Writer, opts Options) error {
	return WriteScalingJSONCtx(context.Background(), w, opts)
}

// WriteScalingJSONCtx is WriteScalingJSON under a context. Like the grid
// export, the report is always written and always valid JSON; failed or
// undispatched cells keep their slots with Error set and the report is
// marked incomplete. Digest parity across every engine and pool width on
// one design is enforced unconditionally — a scaling number from an engine
// that computed a different state is worthless.
func WriteScalingJSONCtx(ctx context.Context, w io.Writer, opts Options) error {
	rep, firstErr := MeasureScaling(ctx, opts)
	if err := EncodeScaling(w, rep); err != nil {
		return err
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	return firstErr
}

// EncodeScaling writes an already-measured report as indented JSON.
func EncodeScaling(w io.Writer, rep ScalingReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// Scaling renders the grid as a table: one block per design, ns/cycle and
// speedup-vs-best-sequential per engine row.
func Scaling(w io.Writer, opts Options) error {
	return ScalingCtx(context.Background(), w, opts)
}

// ScalingCtx is Scaling under a context.
func ScalingCtx(ctx context.Context, w io.Writer, opts Options) error {
	rep, firstErr := MeasureScaling(ctx, opts)
	RenderScaling(w, rep)
	if err := ctx.Err(); err != nil {
		return err
	}
	return firstErr
}

// RenderScaling writes an already-measured report as a table.
func RenderScaling(w io.Writer, rep ScalingReport) {
	fmt.Fprintf(w, "Intra-design scaling: %d-cycle window, GOMAXPROCS=%d, NumCPU=%d\n",
		rep.Window, rep.GOMAXPROCS, rep.NumCPU)
	if rep.GOMAXPROCS == 1 {
		fmt.Fprintf(w, "note: single-core host; pool overhead is measurable, speedup is not\n")
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	last := ""
	for _, r := range rep.Results {
		if r.Design != last {
			fmt.Fprintf(tw, "\n%s\tworkers\tns/cycle\tMcycles/s\tspeedup\n", r.Design)
			last = r.Design
		}
		if r.Error != "" {
			fmt.Fprintf(tw, "  %s\t%d\tERROR: %s\t\t\n", r.Engine, r.Workers, r.Error)
			continue
		}
		fmt.Fprintf(tw, "  %s\t%d\t%.1f\t%.2f\t%.2fx\n",
			r.Engine, r.Workers, r.NsPerCycle, r.CyclesPerSec/1e6, r.SpeedupVsBestSeq)
	}
	tw.Flush()
}

// MeasureScaling runs the grid and assembles the report. Cells run one at
// a time (see the package comment) in deterministic order. The error is
// the first measurement failure or digest mismatch; the report is complete
// modulo the cells it marks as failed.
func MeasureScaling(ctx context.Context, opts Options) (ScalingReport, error) {
	rep := ScalingReport{
		Schema:     "cuttlego-scaling/v1",
		Window:     opts.Cycles,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}
	designs := opts.Designs
	if len(designs) == 0 {
		designs = ScalingDesigns
	}
	cells := scalingCells()
	var firstErr error
	for _, name := range designs {
		bm, ok := Lookup(name)
		if !ok {
			return rep, fmt.Errorf("bench: unknown design %q (catalogue: %v)", name, Names())
		}
		rows := make([]ScalingResult, 0, len(cells))
		bestSeq := 0.0
		for _, c := range cells {
			r := ScalingResult{Design: name, Engine: c.eng.Name, Workers: c.workers}
			if err := ctx.Err(); err != nil {
				r.Error = "not run: cancelled"
				rep.Incomplete = true
				rows = append(rows, r)
				continue
			}
			m, err := Measure(bm, c.eng, opts.Cycles)
			if err != nil {
				r.Error = err.Error()
				rep.Incomplete = true
				if firstErr == nil {
					firstErr = err
				}
				rows = append(rows, r)
				continue
			}
			r.Cycles = m.Cycles
			if m.Cycles > 0 {
				r.NsPerCycle = float64(m.Elapsed.Nanoseconds()) / float64(m.Cycles)
			}
			r.CyclesPerSec = m.CPS()
			r.StateDigest = fmt.Sprintf("%016x", m.Digest)
			if c.seq && r.NsPerCycle > 0 && (bestSeq == 0 || r.NsPerCycle < bestSeq) {
				bestSeq = r.NsPerCycle
			}
			rows = append(rows, r)
		}
		for i := range rows {
			if rows[i].Error == "" && rows[i].NsPerCycle > 0 && bestSeq > 0 {
				rows[i].SpeedupVsBestSeq = bestSeq / rows[i].NsPerCycle
			}
		}
		if err := checkScalingDigests(name, rows); err != nil {
			rep.Incomplete = true
			if firstErr == nil {
				firstErr = err
			}
		}
		rep.Results = append(rep.Results, rows...)
	}
	return rep, firstErr
}

// checkScalingDigests enforces digest parity across every row of one
// design: an engine or pool width that lands on a different final state
// disqualifies the whole report.
func checkScalingDigests(design string, rows []ScalingResult) error {
	ref := ScalingResult{}
	for _, r := range rows {
		if r.Error != "" || r.StateDigest == "" {
			continue
		}
		if ref.StateDigest == "" {
			ref = r
			continue
		}
		if r.StateDigest != ref.StateDigest {
			return fmt.Errorf("bench: scaling digest mismatch on %s: %s(w%d) has %s, %s(w%d) has %s",
				design, ref.Engine, ref.Workers, ref.StateDigest, r.Engine, r.Workers, r.StateDigest)
		}
	}
	return nil
}
