package bench

import (
	"fmt"
	"os"

	"cuttlego/internal/cache"
	"cuttlego/internal/lang"
)

// Extras returns demonstration designs that are not Table 1 rows but are
// useful from the command-line tools (the MSI coherence system in both its
// healthy and deliberately broken forms).
func Extras() []Benchmark {
	return []Benchmark{
		{
			Name:        "msi",
			Description: "2-core MSI cache coherence (child caches + parent engine)",
			Workload:    "deterministic per-core load/store generators",
			New: func() Instance {
				sys := cache.Build(cache.Config{})
				sys.Design.MustCheck()
				return Instance{Design: sys.Design}
			},
		},
		{
			Name:        "msi-buggy",
			Description: "MSI system with the Case Study 1 dropped-ack deadlock",
			Workload:    "deterministic per-core load/store generators",
			New: func() Instance {
				sys := cache.Build(cache.Config{BugDroppedAck: true})
				sys.Design.MustCheck()
				return Instance{Design: sys.Design}
			},
		},
		{
			Name:        "fft64",
			Description: "64-point FFT butterfly network (wide levels for the BSP rtlsim backend)",
			Workload:    "input feedback rule perturbing the butterfly inputs",
			New: func() Instance {
				return Instance{Design: FFTBench(64).MustCheck()}
			},
		},
		{
			Name:        "pstress",
			Description: "8 independent heavy rules (deep mix chains; edgeless conflict graph)",
			Workload:    "self-contained per-rule mixing, no testbench",
			New: func() Instance {
				return Instance{Design: ParallelStress(8, 96).MustCheck()}
			},
		},
	}
}

// Lookup finds a named design among the Table 1 suite and the extras.
func Lookup(name string) (Benchmark, bool) {
	for _, bm := range append(Suite(), Extras()...) {
		if bm.Name == name {
			return bm, true
		}
	}
	return Benchmark{}, false
}

// Names lists every catalogued design.
func Names() []string {
	var out []string
	for _, bm := range append(Suite(), Extras()...) {
		out = append(out, bm.Name)
	}
	return out
}

// LoadOpts configures Load's textual frontend.
type LoadOpts struct {
	// MaxErrors caps parser diagnostics (0 = frontend default, <0 =
	// unlimited); the CLIs expose it as -maxerrors.
	MaxErrors int
}

// Load resolves a design reference for the command-line tools: a catalogue
// name, or a path to a .koika source file parsed by the textual frontend
// (external functions must not be required, since no host bindings exist).
func Load(ref string) (Instance, error) {
	return LoadWith(ref, LoadOpts{})
}

// LoadWith is Load with frontend options.
func LoadWith(ref string, opts LoadOpts) (Instance, error) {
	if bm, ok := Lookup(ref); ok {
		return bm.New(), nil
	}
	src, err := os.ReadFile(ref)
	if err != nil {
		return Instance{}, fmt.Errorf("%q is neither a catalogued design (%v) nor a readable file: %w",
			ref, Names(), err)
	}
	d, err := lang.ParseOpts(string(src), lang.Options{MaxErrors: opts.MaxErrors})
	if err != nil {
		return Instance{}, err
	}
	return Instance{Design: d}, nil
}
