package bench_test

import (
	"context"
	"encoding/json"
	"errors"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"cuttlego/internal/bench"
)

func TestRunParallelOrderAndCoverage(t *testing.T) {
	for _, workers := range []int{1, 3, 16} {
		got := bench.RunParallel(37, workers, func(i int) int { return i * i })
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: result[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
	if got := bench.RunParallel(0, 4, func(i int) int { return i }); len(got) != 0 {
		t.Errorf("n=0 returned %d results", len(got))
	}
}

// An over-provisioned pool (workers far beyond the job count) must clamp
// to n workers: every job still runs exactly once, results stay in index
// order, and no goroutine waits on a job that never comes. The job counts
// concurrent entries to prove no more than n ever run at once.
func TestRunParallelOverProvisionedPool(t *testing.T) {
	const n = 3
	var mu sync.Mutex
	var live, peak, calls int
	got := bench.RunParallel(n, 64, func(i int) int {
		mu.Lock()
		live++
		calls++
		if live > peak {
			peak = live
		}
		mu.Unlock()
		time.Sleep(time.Millisecond)
		mu.Lock()
		live--
		mu.Unlock()
		return i + 100
	})
	if calls != n {
		t.Fatalf("jobs ran %d times, want %d", calls, n)
	}
	if peak > n {
		t.Fatalf("%d jobs in flight at once with only %d jobs", peak, n)
	}
	for i, v := range got {
		if v != i+100 {
			t.Fatalf("result[%d] = %d, want %d", i, v, i+100)
		}
	}

	// Defaulting: workers < 1 must behave like a GOMAXPROCS-wide pool and
	// still complete every job.
	if got := bench.RunParallel(5, 0, func(i int) int { return -i }); len(got) != 5 || got[4] != -4 {
		t.Fatalf("workers=0 run returned %v", got)
	}
	if w := bench.Workers(0); w != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0) = %d, want GOMAXPROCS %d", w, runtime.GOMAXPROCS(0))
	}
	if w := bench.Workers(-3); w != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(-3) = %d, want GOMAXPROCS %d", w, runtime.GOMAXPROCS(0))
	}
}

// The acceptance criterion for -parallel: per-instance results are
// byte-identical to a sequential run, for every report that fans out.
func TestParallelReportsDeterministic(t *testing.T) {
	var seq, par strings.Builder
	if err := bench.Conformance(&seq, 40, 1); err != nil {
		t.Fatal(err)
	}
	if err := bench.Conformance(&par, 40, 8); err != nil {
		t.Fatal(err)
	}
	if seq.String() != par.String() {
		t.Errorf("Conformance output differs between 1 and 8 workers:\n--- seq\n%s\n--- par\n%s", seq.String(), par.String())
	}

	seq.Reset()
	par.Reset()
	if err := bench.Fuzz(&seq, 2000, 6, 24, 1); err != nil {
		t.Fatal(err)
	}
	if err := bench.Fuzz(&par, 2000, 6, 24, 6); err != nil {
		t.Fatal(err)
	}
	if seq.String() != par.String() {
		t.Errorf("Fuzz output differs between 1 and 6 workers:\n--- seq\n%s\n--- par\n%s", seq.String(), par.String())
	}
}

func TestFuzzCatchesDivergence(t *testing.T) {
	// A healthy engine matrix: every seed must agree (this is the
	// randomized-design equivalence sweep the optimizer passes ride on).
	if err := bench.FuzzOne(4242, 48); err != nil {
		t.Fatal(err)
	}
}

func TestWriteJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("times real work")
	}
	var sb strings.Builder
	if err := bench.WriteJSON(&sb, bench.Options{Cycles: 500}, 0); err != nil {
		t.Fatal(err)
	}
	var rep bench.JSONReport
	if err := json.Unmarshal([]byte(sb.String()), &rep); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if rep.Schema != "cuttlego-bench/v1" {
		t.Errorf("schema = %q", rep.Schema)
	}
	if len(rep.Results) == 0 {
		t.Fatal("no results")
	}
	seen := map[string]bool{}
	for _, r := range rep.Results {
		seen[r.Engine] = true
		if r.NsPerCycle <= 0 || r.CyclesPerSec <= 0 {
			t.Errorf("%s/%s: non-positive timing %+v", r.Design, r.Engine, r)
		}
	}
	if !seen["rtlsim(koika,fused,opt)"] {
		t.Errorf("strengthened baseline missing from JSON engines: %v", seen)
	}
}

func TestRunParallelCtxCancelled(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		out, ran := bench.RunParallelCtx(ctx, 25, workers, func(i int) int { return i + 100 })
		if len(out) != 25 {
			t.Fatalf("workers=%d: out has %d slots, want the full 25", workers, len(out))
		}
		if len(ran) == 25 {
			t.Fatalf("workers=%d: all jobs ran despite pre-cancelled context", workers)
		}
		ranSet := map[int]bool{}
		for i, idx := range ran {
			if i > 0 && ran[i-1] >= idx {
				t.Fatalf("workers=%d: ran indices not ascending: %v", workers, ran)
			}
			ranSet[idx] = true
		}
		for i, v := range out {
			if ranSet[i] && v != i+100 {
				t.Errorf("workers=%d: ran job %d has wrong result %d", workers, i, v)
			}
			if !ranSet[i] && v != 0 {
				t.Errorf("workers=%d: skipped job %d has non-zero result %d", workers, i, v)
			}
		}
	}
}

// The satellite acceptance check: a cancelled JSON export still writes a
// well-formed document covering the full grid, with the skipped cells
// marked, and reports the cancellation to the caller.
func TestWriteJSONCtxCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var sb strings.Builder
	err := bench.WriteJSONCtx(ctx, &sb, bench.Options{Cycles: 100}, 2)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	var rep bench.JSONReport
	if uerr := json.Unmarshal([]byte(sb.String()), &rep); uerr != nil {
		t.Fatalf("partial report is not valid JSON: %v\n%s", uerr, sb.String())
	}
	if !rep.Incomplete {
		t.Error("report not marked incomplete")
	}
	if len(rep.Results) == 0 {
		t.Fatal("cancelled report dropped the grid")
	}
	marked := 0
	for _, r := range rep.Results {
		if r.Error == "not run: cancelled" {
			marked++
		}
	}
	if marked == 0 {
		t.Errorf("no results marked as not run: %+v", rep.Results)
	}
}
