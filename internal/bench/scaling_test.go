package bench_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"cuttlego/internal/bench"
)

// The scaling export must be a complete, digest-consistent grid: every
// engine at every pool width lands on the same final state, and the
// speedup column is anchored to the best sequential row.
func TestWriteScalingJSON(t *testing.T) {
	var buf bytes.Buffer
	opts := bench.Options{Cycles: 300, Designs: []string{"collatz", "pstress"}}
	if err := bench.WriteScalingJSON(&buf, opts); err != nil {
		t.Fatal(err)
	}
	var rep bench.ScalingReport
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Schema != "cuttlego-scaling/v1" {
		t.Fatalf("schema %q", rep.Schema)
	}
	if rep.Incomplete {
		t.Fatal("report marked incomplete with no error returned")
	}
	if rep.GOMAXPROCS < 1 || rep.NumCPU < 1 {
		t.Fatalf("host fields not recorded: %+v", rep)
	}
	perDesign := map[string]int{}
	digests := map[string]string{}
	for _, r := range rep.Results {
		if r.Error != "" {
			t.Fatalf("%s/%s: %s", r.Design, r.Engine, r.Error)
		}
		if r.Workers < 1 {
			t.Fatalf("%s/%s: workers %d", r.Design, r.Engine, r.Workers)
		}
		if r.StateDigest == "" || r.NsPerCycle <= 0 || r.SpeedupVsBestSeq <= 0 {
			t.Fatalf("%s/%s: incomplete row %+v", r.Design, r.Engine, r)
		}
		if ref, ok := digests[r.Design]; ok && ref != r.StateDigest {
			t.Fatalf("%s: digest %s vs %s", r.Design, r.StateDigest, ref)
		}
		digests[r.Design] = r.StateDigest
		perDesign[r.Design]++
	}
	// 3 sequential baselines + 2 engines x 4 widths per design.
	for d, n := range perDesign {
		if n != 11 {
			t.Fatalf("%s: %d rows, want 11", d, n)
		}
	}
	if len(perDesign) != 2 {
		t.Fatalf("designs covered: %v", perDesign)
	}
}

func TestScalingTextReport(t *testing.T) {
	var buf strings.Builder
	if err := bench.Scaling(&buf, bench.Options{Cycles: 200, Designs: []string{"pstress"}}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Intra-design scaling", "pstress", "cuttlesim-par(closure,w4)", "rtlsim-par(koika,opt,w8)", "speedup"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}

func TestScalingUnknownDesign(t *testing.T) {
	var buf bytes.Buffer
	err := bench.WriteScalingJSON(&buf, bench.Options{Cycles: 10, Designs: []string{"no-such"}})
	if err == nil || !strings.Contains(err.Error(), "unknown design") {
		t.Fatalf("err = %v", err)
	}
}
