// The parallel batch runner: independent benchmark instances and
// scheduler-fuzz seeds execute concurrently on a worker pool, with results
// collected in index order so the report output is byte-identical to a
// sequential run. Every instance is freshly built inside its job (designs
// and testbenches carry per-instance state), so jobs share nothing.
package bench

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"sync"

	"cuttlego/internal/ast"
	"cuttlego/internal/circuit"
	"cuttlego/internal/cuttlesim"
	"cuttlego/internal/interp"
	"cuttlego/internal/rtlsim"
	"cuttlego/internal/sim"
	"cuttlego/internal/testkit"
)

// Workers normalizes a worker-count flag: n < 1 means one worker per
// available CPU (runtime.GOMAXPROCS), anything else is taken as given.
func Workers(n int) int {
	if n < 1 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// RunParallel executes jobs 0..n-1 on a pool of the given size and returns
// the results in index order.
//
// Contract: workers < 1 defaults to one worker per available CPU
// (runtime.GOMAXPROCS); workers > n is clamped to n, so an
// over-provisioned pool never spawns idle goroutines. The result slice
// depends only on the jobs, never on scheduling; with workers == 1 the
// jobs run sequentially in order on the calling goroutine.
func RunParallel[T any](n, workers int, job func(i int) T) []T {
	out, _ := RunParallelCtx(context.Background(), n, workers, job)
	return out
}

// RunParallelCtx is RunParallel under a context: once ctx is cancelled no
// further jobs are dispatched (in-flight jobs finish; jobs wanting earlier
// cancellation must watch ctx themselves). It returns the results gathered
// so far — slots of undispatched jobs hold T's zero value — plus the set of
// job indices that actually ran, in ascending order. The worker-count
// normalization is RunParallel's: < 1 becomes GOMAXPROCS, > n is clamped
// to n.
func RunParallelCtx[T any](ctx context.Context, n, workers int, job func(i int) T) (out []T, ran []int) {
	out = make([]T, n)
	done := make([]bool, n)
	workers = Workers(workers)
	if workers == 1 || n <= 1 {
		for i := 0; i < n; i++ {
			if ctx.Err() != nil {
				break
			}
			out[i] = job(i)
			done[i] = true
		}
	} else {
		if workers > n {
			workers = n
		}
		var wg sync.WaitGroup
		next := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range next {
					out[i] = job(i)
					done[i] = true
				}
			}()
		}
	dispatch:
		for i := 0; i < n; i++ {
			select {
			case next <- i:
			case <-ctx.Done():
				break dispatch
			}
		}
		close(next)
		wg.Wait()
	}
	for i, ok := range done {
		if ok {
			ran = append(ran, i)
		}
	}
	return out, ran
}

// fuzzEngines builds the engine matrix one fuzz seed is checked across:
// the reference interpreter plus every simulation pipeline configuration,
// including all three rtlsim backends on both raw and netopt-optimized
// netlists.
func fuzzEngines() []Engine {
	engines := []Engine{
		EngCuttlesim(cuttlesim.LNaive, cuttlesim.Closure),
		EngCuttlesim(cuttlesim.LStatic, cuttlesim.Closure),
		EngCuttlesim(cuttlesim.LStatic, cuttlesim.Bytecode),
		EngCuttlesim(cuttlesim.LActivity, cuttlesim.Closure),
		EngCuttlesim(cuttlesim.LActivity, cuttlesim.Bytecode),
	}
	for _, backend := range []rtlsim.Backend{rtlsim.Switch, rtlsim.Closure, rtlsim.Fused} {
		for _, opt := range []bool{false, true} {
			engines = append(engines, EngRTLOpt(circuit.StyleKoika, backend, opt))
		}
	}
	// The parallel engines, with MinGrain 1 so even the tiny random designs
	// fan out onto their pools rather than degenerating to the sequential
	// path.
	engines = append(engines,
		Engine{
			Name: "cuttlesim-par(closure,w4,grain1)",
			Make: func(inst Instance) (sim.Engine, error) {
				return cuttlesim.New(inst.Design, cuttlesim.Options{
					Level: cuttlesim.LStatic, Workers: 4, MinGrain: 1,
				})
			},
		},
		Engine{
			Name: "rtlsim-par(koika,w4,grain1)",
			Make: func(inst Instance) (sim.Engine, error) {
				ckt, err := circuit.Compile(inst.Design, circuit.StyleKoika)
				if err != nil {
					return nil, err
				}
				return rtlsim.New(ckt, rtlsim.Options{Backend: rtlsim.Fused, Workers: 4, MinGrain: 1})
			},
		},
	)
	return engines
}

// FuzzOne runs one randomized design (testkit.Random seed) across the full
// engine matrix for n cycles in lockstep, returning the first divergence
// from the reference interpreter (or nil).
func FuzzOne(seed int64, cycles uint64) error {
	build := func() *ast.Design { return testkit.Random(seed).MustCheck() }
	ref, err := interp.New(build())
	if err != nil {
		return err
	}
	type pair struct {
		name string
		eng  sim.Engine
	}
	var others []pair
	defer func() {
		for _, p := range others {
			closeEngine(p.eng)
		}
	}()
	for _, spec := range fuzzEngines() {
		e, err := spec.Make(Instance{Design: build()})
		if err != nil {
			return fmt.Errorf("seed %d: %s: %w", seed, spec.Name, err)
		}
		others = append(others, pair{spec.Name, e})
	}
	d := ref.Design()
	for c := uint64(0); c < cycles; c++ {
		ref.Cycle()
		want := sim.StateOf(ref)
		for _, p := range others {
			p.eng.Cycle()
			got := sim.StateOf(p.eng)
			for i := range want {
				if got[i] != want[i] {
					return fmt.Errorf("seed %d cycle %d: %s reg %s = %v, interp has %v",
						seed, c, p.name, d.Registers[i].Name, got[i], want[i])
				}
			}
			for _, r := range d.Rules {
				if p.eng.RuleFired(r.Name) != ref.RuleFired(r.Name) {
					return fmt.Errorf("seed %d cycle %d: %s rule %s fired=%v, interp disagrees",
						seed, c, p.name, r.Name, p.eng.RuleFired(r.Name))
				}
			}
		}
	}
	return nil
}

// Fuzz cross-checks count random designs (seeds base..base+count-1)
// against the full engine matrix, fanning the seeds out over the worker
// pool. Output is deterministic regardless of worker count.
func Fuzz(w io.Writer, base int64, count int, cycles uint64, workers int) error {
	return FuzzCtx(context.Background(), w, base, count, cycles, workers)
}

// FuzzCtx is Fuzz under a context: cancellation stops dispatching further
// seeds, the seeds already checked are reported, and the cancellation cause
// is returned so the run still ends with a truthful verdict.
func FuzzCtx(ctx context.Context, w io.Writer, base int64, count int, cycles uint64, workers int) error {
	fmt.Fprintf(w, "Scheduler fuzz: %d random designs x %d engines, %d cycles each\n\n",
		count, len(fuzzEngines())+1, cycles)
	errs, ran := RunParallelCtx(ctx, count, workers, func(i int) error {
		return FuzzOne(base+int64(i), cycles)
	})
	failed := 0
	for _, i := range ran {
		verdict := "OK"
		if errs[i] != nil {
			verdict = errs[i].Error()
			failed++
		}
		fmt.Fprintf(w, "seed %-6d %s\n", base+int64(i), verdict)
	}
	if failed > 0 {
		return fmt.Errorf("fuzz: %d of %d seeds diverged", failed, len(ran))
	}
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("fuzz stopped after %d of %d seeds: %w", len(ran), count, err)
	}
	fmt.Fprintf(w, "\nall %d seeds agree with the reference interpreter\n", count)
	return nil
}
