package bench

import (
	"fmt"
	"testing"

	"cuttlego/internal/ast"
	"cuttlego/internal/cuttlesim"
	"cuttlego/internal/interp"
	"cuttlego/internal/sim"
)

// FuzzLockstep is the native-fuzzing face of the lockstep checker: the
// fuzzer picks a generator seed and cycle count, and every engine in the
// matrix must agree with the reference interpreter cycle-for-cycle. Any
// divergence or panic across the interpreter, cuttlesim, and the rtlsim
// backends is a bug. Cycle counts are capped to keep individual execs fast.
func FuzzLockstep(f *testing.F) {
	f.Add(int64(1), uint64(8))
	f.Add(int64(42), uint64(16))
	f.Add(int64(1234), uint64(3))
	f.Fuzz(func(t *testing.T, seed int64, cycles uint64) {
		if err := FuzzOne(seed, cycles%64+1); err != nil {
			t.Fatalf("engines diverged: %v", err)
		}
	})
}

// FuzzStallLockstep hammers the activity scheduler where it matters: on
// stall-heavy producer/consumer chains whose rules spend most cycles parked.
// Fuzzed shape parameters vary the chain length and release period; the
// activity engines (both backends) must track the reference interpreter
// cycle-for-cycle.
func FuzzStallLockstep(f *testing.F) {
	f.Add(uint8(8), uint8(4), uint16(96))
	f.Add(uint8(1), uint8(1), uint16(33))
	f.Add(uint8(15), uint8(6), uint16(300))
	f.Fuzz(func(t *testing.T, stagesRaw, periodRaw uint8, cyclesRaw uint16) {
		stages := int(stagesRaw)%16 + 1
		periodLog := int(periodRaw)%6 + 1
		cycles := uint64(cyclesRaw)%512 + 1
		build := func() *ast.Design { return IdleBench(stages, periodLog).MustCheck() }
		ref, err := interp.New(build())
		if err != nil {
			t.Fatal(err)
		}
		type pair struct {
			name string
			eng  sim.Engine
		}
		var others []pair
		for _, cfg := range []cuttlesim.Options{
			{Level: cuttlesim.LStatic, Backend: cuttlesim.Closure},
			{Level: cuttlesim.LActivity, Backend: cuttlesim.Closure},
			{Level: cuttlesim.LActivity, Backend: cuttlesim.Bytecode},
		} {
			e, err := cuttlesim.New(build(), cfg)
			if err != nil {
				t.Fatal(err)
			}
			others = append(others, pair{fmt.Sprintf("%v/%v", cfg.Level, cfg.Backend), e})
		}
		d := ref.Design()
		for c := uint64(0); c < cycles; c++ {
			ref.Cycle()
			want := sim.StateOf(ref)
			for _, p := range others {
				p.eng.Cycle()
				got := sim.StateOf(p.eng)
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("stages=%d period=2^%d cycle %d: %s reg %s = %v, interp has %v",
							stages, periodLog, c, p.name, d.Registers[i].Name, got[i], want[i])
					}
				}
				for _, r := range d.Rules {
					if p.eng.RuleFired(r.Name) != ref.RuleFired(r.Name) {
						t.Fatalf("stages=%d period=2^%d cycle %d: %s rule %s fired=%v, interp disagrees",
							stages, periodLog, c, p.name, r.Name, p.eng.RuleFired(r.Name))
					}
				}
			}
		}
	})
}
