package bench

import "testing"

// FuzzLockstep is the native-fuzzing face of the lockstep checker: the
// fuzzer picks a generator seed and cycle count, and every engine in the
// matrix must agree with the reference interpreter cycle-for-cycle. Any
// divergence or panic across the interpreter, cuttlesim, and the rtlsim
// backends is a bug. Cycle counts are capped to keep individual execs fast.
func FuzzLockstep(f *testing.F) {
	f.Add(int64(1), uint64(8))
	f.Add(int64(42), uint64(16))
	f.Add(int64(1234), uint64(3))
	f.Fuzz(func(t *testing.T, seed int64, cycles uint64) {
		if err := FuzzOne(seed, cycles%64+1); err != nil {
			t.Fatalf("engines diverged: %v", err)
		}
	})
}
