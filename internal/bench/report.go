package bench

import (
	"fmt"
	"io"
	"strings"

	"cuttlego/internal/circuit"
	"cuttlego/internal/cppgen"
	"cuttlego/internal/cuttlesim"
	"cuttlego/internal/rtlsim"
	"cuttlego/internal/verilog"
)

// Options configures the report generators.
type Options struct {
	// Cycles is the timed window per (benchmark, engine) pair.
	Cycles uint64
	// HaltBudget bounds the Table 1 run-to-completion measurement.
	HaltBudget uint64
	// Designs, when non-empty, restricts the JSON export to the named
	// catalogue entries (Table 1 rows or extras).
	Designs []string
	// DigestCheck makes the JSON export fail when two engines that ran the
	// same design disagree on the final state digest — the CI smoke gate.
	DigestCheck bool
	// Workers, when > 1, adds the parallel engines (conflict-free Cuttlesim
	// rule groups, BSP-sharded rtlsim) at that pool width to the JSON grid.
	Workers int
}

// selectBenchmarks resolves the Designs filter against the catalogue; an
// empty filter means the whole Table 1 suite.
func (o Options) selectBenchmarks() ([]Benchmark, error) {
	if len(o.Designs) == 0 {
		return Suite(), nil
	}
	var out []Benchmark
	for _, name := range o.Designs {
		bm, ok := Lookup(name)
		if !ok {
			return nil, fmt.Errorf("bench: unknown design %q (catalogue: %v)", name, Names())
		}
		out = append(out, bm)
	}
	return out, nil
}

// Quick returns small budgets suitable for tests and smoke runs.
func Quick() Options { return Options{Cycles: 20_000, HaltBudget: 300_000} }

// Full returns budgets comparable (in shape, not scale) to the paper's.
func Full() Options { return Options{Cycles: 2_000_000, HaltBudget: 50_000_000} }

func mark(b bool) string {
	if b {
		return "yes"
	}
	return "-"
}

// Table1 regenerates the paper's Table 1: per benchmark, the
// meta-programming and combinational flags, source-line counts for the
// design, the generated Cuttlesim model, and the generated Verilog, plus
// the cycle count of the shipped workload.
func Table1(w io.Writer, opts Options) error {
	fmt.Fprintf(w, "Table 1: benchmarks (M = meta-programmed, C = combinational)\n\n")
	fmt.Fprintf(w, "%-10s %-3s %-3s %10s %14s %12s %14s  %s\n",
		"design", "M", "C", "koika-sloc", "cuttlesim-loc", "verilog-loc", "cycles", "description")
	for _, bm := range Suite() {
		inst := bm.New()
		d := inst.Design
		koikaSLOC := d.Print().SLOC()
		cppLoc, err := cppgen.LineCount(d)
		if err != nil {
			return err
		}
		ckt, err := circuit.Compile(d, circuit.StyleKoika)
		if err != nil {
			return err
		}
		vloc := verilog.LineCount(ckt)
		cyc := "-"
		if n, halted := HaltCycles(bm, opts.HaltBudget); halted {
			cyc = fmt.Sprintf("%d", n)
		} else if inst.Bench != nil {
			cyc = fmt.Sprintf(">%d", opts.HaltBudget)
		}
		fmt.Fprintf(w, "%-10s %-3s %-3s %10d %14d %12d %14s  %s\n",
			bm.Name, mark(bm.Meta), mark(bm.Comb), koikaSLOC, cppLoc, vloc, cyc, bm.Description)
	}
	return nil
}

// Fig1 regenerates Figure 1: cycles per second of the Cuttlesim model
// versus the circuit-level simulator on the Kôika-compiled netlist, per
// benchmark, with the speedup factor. Two circuit-level columns are shown:
// the naive closure walker the seed shipped with, and the strengthened
// baseline (netopt passes + fused backend) that plays Verilator honestly.
// The paper's claim structure survives the stronger baseline: Cuttlesim's
// advantage narrows but persists.
func Fig1(w io.Writer, opts Options) error {
	fmt.Fprintf(w, "Figure 1: performance of Cuttlesim and circuit-level (Verilator-substitute) models\n")
	fmt.Fprintf(w, "window: %d cycles per engine\n\n", opts.Cycles)
	fmt.Fprintf(w, "%-10s %18s %18s %18s %9s %9s\n",
		"design", "cuttlesim (cyc/s)", "rtl-koika (cyc/s)", "rtl-opt (cyc/s)", "vs naive", "vs opt")
	cuttle := EngCuttlesim(cuttlesim.LStatic, cuttlesim.Closure)
	rtl := EngRTL(circuit.StyleKoika, rtlsim.Closure)
	opt := EngRTLOpt(circuit.StyleKoika, rtlsim.Fused, true)
	for _, bm := range Suite() {
		if err := Verify(bm, cuttle, rtl, 500); err != nil {
			return err
		}
		if err := Verify(bm, cuttle, opt, 500); err != nil {
			return err
		}
		mc, err := Measure(bm, cuttle, opts.Cycles)
		if err != nil {
			return err
		}
		mr, err := Measure(bm, rtl, opts.Cycles)
		if err != nil {
			return err
		}
		mo, err := Measure(bm, opt, opts.Cycles)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-10s %18.0f %18.0f %18.0f %8.2fx %8.2fx\n",
			bm.Name, mc.CPS(), mr.CPS(), mo.CPS(), mc.CPS()/mr.CPS(), mc.CPS()/mo.CPS())
	}
	return nil
}

// Fig2 regenerates Figure 2: the circuit-level simulator on the dynamic
// (Kôika-style) netlist versus the static (Bluespec-style) netlist.
// Designs whose rules statically conflict are skipped: the static
// scheduler is not cycle-equivalent for them (the commercial compiler
// would reject or reorder such designs).
func Fig2(w io.Writer, opts Options) error {
	fmt.Fprintf(w, "Figure 2: circuit-level simulation of equivalent dynamic (koika) and static (bluespec) RTL\n")
	fmt.Fprintf(w, "window: %d cycles per engine\n\n", opts.Cycles)
	fmt.Fprintf(w, "%-10s %18s %18s %9s\n", "design", "rtl-koika (cyc/s)", "rtl-bsc (cyc/s)", "ratio")
	koika := EngRTL(circuit.StyleKoika, rtlsim.Closure)
	bsc := EngRTL(circuit.StyleBluespec, rtlsim.Closure)
	for _, bm := range Suite() {
		free, err := circuit.StaticallyConflictFree(bm.New().Design)
		if err != nil {
			return err
		}
		if !free {
			fmt.Fprintf(w, "%-10s %18s %18s %9s\n", bm.Name, "-", "-", "n/a (static conflicts)")
			continue
		}
		if err := Verify(bm, koika, bsc, 500); err != nil {
			return err
		}
		mk, err := Measure(bm, koika, opts.Cycles)
		if err != nil {
			return err
		}
		mb, err := Measure(bm, bsc, opts.Cycles)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-10s %18.0f %18.0f %8.2fx\n", bm.Name, mk.CPS(), mb.CPS(), mb.CPS()/mk.CPS())
	}
	return nil
}

// Fig3 regenerates Figure 3's sensitivity study. The paper compiles its
// C++ models with GCC and Clang; this module substitutes two execution
// engines per pipeline (compiled closures vs a bytecode/switch
// interpreter) and shows that Cuttlesim's advantage is stable across them.
func Fig3(w io.Writer, opts Options) error {
	fmt.Fprintf(w, "Figure 3: engine sensitivity (substitute for the paper's GCC/Clang sweep)\n")
	fmt.Fprintf(w, "window: %d cycles per engine\n\n", opts.Cycles)
	engines := []Engine{
		EngCuttlesim(cuttlesim.LStatic, cuttlesim.Closure),
		EngCuttlesim(cuttlesim.LStatic, cuttlesim.Bytecode),
		EngRTL(circuit.StyleKoika, rtlsim.Closure),
		EngRTL(circuit.StyleKoika, rtlsim.Switch),
		EngRTLOpt(circuit.StyleKoika, rtlsim.Fused, true),
	}
	fmt.Fprintf(w, "%-10s", "design")
	for _, e := range engines {
		fmt.Fprintf(w, " %28s", e.Name)
	}
	fmt.Fprintln(w)
	for _, bm := range Suite() {
		fmt.Fprintf(w, "%-10s", bm.Name)
		for _, e := range engines {
			m, err := Measure(bm, e, opts.Cycles)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, " %22.0f cyc/s", m.CPS())
		}
		fmt.Fprintln(w)
	}
	return nil
}

// Ablation times the rv32i benchmark at every optimization level of the
// §3.2–3.3 ladder, quantifying each refinement's payoff.
func Ablation(w io.Writer, opts Options) error {
	fmt.Fprintf(w, "Ablation: Cuttlesim optimization ladder on rv32i/primes\n")
	fmt.Fprintf(w, "window: %d cycles per level\n\n", opts.Cycles)
	fmt.Fprintf(w, "%-16s %18s %10s\n", "level", "cyc/s", "vs naive")
	bm := Suite()[3] // rv32i
	var naive float64
	for _, level := range cuttlesim.Levels() {
		m, err := Measure(bm, EngCuttlesim(level, cuttlesim.Closure), opts.Cycles)
		if err != nil {
			return err
		}
		if naive == 0 {
			naive = m.CPS()
		}
		fmt.Fprintf(w, "%-16s %18.0f %9.2fx\n", level.String(), m.CPS(), m.CPS()/naive)
	}
	return nil
}

// AblationStress times the ladder on the state-stress design (512
// registers, 4 sparse rules), the regime where transaction overhead
// dominates and each refinement's payoff is most visible.
func AblationStress(w io.Writer, opts Options) error {
	fmt.Fprintf(w, "Ablation (state stress): optimization ladder on a 512-register design\n")
	fmt.Fprintf(w, "window: %d cycles per level\n\n", opts.Cycles)
	fmt.Fprintf(w, "%-16s %18s %10s\n", "level", "cyc/s", "vs naive")
	bm := Benchmark{
		Name: "stress",
		New: func() Instance {
			return Instance{Design: StateStress(512, 4).MustCheck()}
		},
	}
	var naive float64
	for _, level := range cuttlesim.Levels() {
		m, err := Measure(bm, EngCuttlesim(level, cuttlesim.Closure), opts.Cycles)
		if err != nil {
			return err
		}
		if naive == 0 {
			naive = m.CPS()
		}
		fmt.Fprintf(w, "%-16s %18.0f %9.2fx\n", level.String(), m.CPS(), m.CPS()/naive)
	}
	return nil
}

// Conformance runs the cross-pipeline equivalence matrix: every catalogued
// design against every engine configuration, compared to the reference
// interpreter. This is the report to run before trusting any timing
// number. The (design, engine) cells are independent, so they fan out over
// the worker pool; the rendered table is byte-identical for any worker
// count.
func Conformance(w io.Writer, cycles uint64, workers int) error {
	engines := []Engine{
		EngCuttlesim(cuttlesim.LNaive, cuttlesim.Closure),
		EngCuttlesim(cuttlesim.LStatic, cuttlesim.Closure),
		EngCuttlesim(cuttlesim.LStatic, cuttlesim.Bytecode),
		EngCuttlesim(cuttlesim.LActivity, cuttlesim.Closure),
		EngCuttlesim(cuttlesim.LActivity, cuttlesim.Bytecode),
		EngRTL(circuit.StyleKoika, rtlsim.Closure),
		EngRTLOpt(circuit.StyleKoika, rtlsim.Fused, true),
		EngRTL(circuit.StyleBluespec, rtlsim.Closure),
	}
	ref := EngInterp()
	fmt.Fprintf(w, "Conformance: each engine vs the reference interpreter (%d cycles)\n\n", cycles)
	fmt.Fprintf(w, "%-10s", "design")
	for _, e := range engines {
		fmt.Fprintf(w, " %28s", e.Name)
	}
	fmt.Fprintln(w)
	suite := append(Suite(), Extras()...)
	type cell struct {
		bm  Benchmark
		eng Engine
	}
	var cells []cell
	skip := make([]bool, 0, len(suite)*len(engines))
	for _, bm := range suite {
		free, err := circuit.StaticallyConflictFree(bm.New().Design)
		if err != nil {
			return err
		}
		for _, e := range engines {
			cells = append(cells, cell{bm, e})
			skip = append(skip, e.Name == "rtlsim(bluespec,closure)" && !free)
		}
	}
	verdicts := RunParallel(len(cells), workers, func(i int) string {
		if skip[i] {
			return "n/a"
		}
		if err := Verify(cells[i].bm, ref, cells[i].eng, cycles); err != nil {
			return "DIVERGED"
		}
		return "OK"
	})
	for bi, bm := range suite {
		fmt.Fprintf(w, "%-10s", bm.Name)
		for ei := range engines {
			fmt.Fprintf(w, " %28s", verdicts[bi*len(engines)+ei])
		}
		fmt.Fprintln(w)
	}
	return nil
}

// All runs every report in order.
func All(w io.Writer, opts Options) error {
	for _, f := range []func(io.Writer, Options) error{Table1, Fig1, Fig2, Fig3, Ablation, AblationStress} {
		if err := f(w, opts); err != nil {
			return err
		}
		fmt.Fprintln(w, strings.Repeat("-", 78))
	}
	return nil
}
