package bench_test

import (
	"os"
	"path/filepath"
	"testing"

	"cuttlego/internal/bench"
	"cuttlego/internal/cuttlesim"
	"cuttlego/internal/sim"
)

func TestLookupAndNames(t *testing.T) {
	names := bench.Names()
	if len(names) < 9 {
		t.Fatalf("catalogue too small: %v", names)
	}
	for _, n := range []string{"rv32i", "msi", "msi-buggy"} {
		if _, ok := bench.Lookup(n); !ok {
			t.Errorf("Lookup(%q) failed", n)
		}
	}
	if _, ok := bench.Lookup("nope"); ok {
		t.Error("Lookup of unknown name succeeded")
	}
}

func TestLoadByName(t *testing.T) {
	inst, err := bench.Load("collatz")
	if err != nil {
		t.Fatal(err)
	}
	if inst.Design.Name != "collatz" {
		t.Errorf("loaded %q", inst.Design.Name)
	}
}

func TestLoadFromFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tiny.koika")
	src := `
design tiny
register x : bits<8> init 8'd1
rule shift:
    x.wr0(x.rd0() << 3'd1)
schedule: shift
`
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	inst, err := bench.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	s, err := cuttlesim.New(inst.Design, cuttlesim.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	sim.Run(s, nil, 3)
	if got := s.Reg("x").Val; got != 8 {
		t.Errorf("x = %d", got)
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := bench.Load("/does/not/exist.koika"); err == nil {
		t.Error("Load of missing file succeeded")
	}
	path := filepath.Join(t.TempDir(), "bad.koika")
	if err := os.WriteFile(path, []byte("not a design"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := bench.Load(path); err == nil {
		t.Error("Load of malformed file succeeded")
	}
}

func TestExtrasRun(t *testing.T) {
	for _, bm := range bench.Extras() {
		inst := bm.New()
		s, err := cuttlesim.New(inst.Design, cuttlesim.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		sim.Run(s, nil, 100)
	}
}
