// Machine-readable benchmark output, so successive PRs can track a
// BENCH_*.json performance trajectory instead of eyeballing table text.
package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"

	"cuttlego/internal/circuit"
	"cuttlego/internal/cuttlesim"
	"cuttlego/internal/rtlsim"
)

// JSONResult is one (design, engine) timing in the stable export schema.
// A run that failed or was cancelled keeps its slot with Error set and
// zeroed timings, so consumers always see the full (design, engine) grid.
type JSONResult struct {
	Design       string  `json:"design"`
	Engine       string  `json:"engine"`
	Cycles       uint64  `json:"cycles"`
	NsPerCycle   float64 `json:"ns_per_cycle"`
	CyclesPerSec float64 `json:"cycles_per_sec"`
	// StateDigest is the FNV-1a hash of the final architectural state; all
	// engines on one design row must agree on it.
	StateDigest string `json:"state_digest,omitempty"`
	Error       string `json:"error,omitempty"`
}

// JSONReport is the top-level export document.
type JSONReport struct {
	Schema string `json:"schema"`
	Window uint64 `json:"window_cycles"`
	// Incomplete marks a report whose runs were cut short (timeout,
	// interrupt) or failed; the per-result Error fields say which.
	Incomplete bool         `json:"incomplete,omitempty"`
	Results    []JSONResult `json:"results"`
}

// jsonEngines is the engine set the JSON trajectory tracks: the paper's
// two headline pipelines plus the strengthened (netopt + fused) baseline
// and the switch interpreter as the floor. The activity ablation runs both
// Cuttlesim backends with and without activity-driven scheduling. With
// opts.Workers > 1 the grid gains both parallel engines at that pool
// width, so their ns/cycle rides the same trajectory (and the digest gate)
// as the sequential engines.
func jsonEngines(opts Options) []Engine {
	engines := []Engine{
		EngCuttlesim(cuttlesim.LStatic, cuttlesim.Closure),
		EngCuttlesim(cuttlesim.LStatic, cuttlesim.Bytecode),
		EngCuttlesim(cuttlesim.LActivity, cuttlesim.Closure),
		EngCuttlesim(cuttlesim.LActivity, cuttlesim.Bytecode),
		EngRTL(circuit.StyleKoika, rtlsim.Closure),
		EngRTL(circuit.StyleKoika, rtlsim.Switch),
		EngRTLOpt(circuit.StyleKoika, rtlsim.Fused, true),
	}
	if opts.Workers > 1 {
		engines = append(engines,
			EngCuttlesimPar(cuttlesim.Closure, opts.Workers),
			EngRTLPar(true, opts.Workers))
	}
	return engines
}

// WriteJSON measures every Table 1 benchmark against the tracked engine
// set and writes the report as indented JSON. Measurements fan out over
// the worker pool — timing one (design, engine) pair is independent of the
// others, and each job gets a fresh instance. Wall-clock numbers under
// contention are noisier than sequential ones; the schema records them
// per-instance either way, and the output ordering is deterministic.
func WriteJSON(w io.Writer, opts Options, workers int) error {
	return WriteJSONCtx(context.Background(), w, opts, workers)
}

// WriteJSONCtx is WriteJSON under a context. The report is always written
// and always valid JSON: a failed run keeps its slot with its error, runs
// never dispatched because ctx was cancelled are marked "not run", and the
// report carries incomplete=true. The first failure (or the cancellation
// cause) is returned after the report has been encoded, so callers can
// exit nonzero without losing the partial results.
func WriteJSONCtx(ctx context.Context, w io.Writer, opts Options, workers int) error {
	suite, err := opts.selectBenchmarks()
	if err != nil {
		return err
	}
	type cell struct {
		bm  Benchmark
		eng Engine
	}
	var cells []cell
	for _, bm := range suite {
		for _, eng := range jsonEngines(opts) {
			cells = append(cells, cell{bm, eng})
		}
	}
	type outcome struct {
		m   Measurement
		err error
	}
	results, ran := RunParallelCtx(ctx, len(cells), workers, func(i int) outcome {
		m, err := Measure(cells[i].bm, cells[i].eng, opts.Cycles)
		return outcome{m, err}
	})
	ranSet := make([]bool, len(cells))
	for _, i := range ran {
		ranSet[i] = true
	}
	rep := JSONReport{Schema: "cuttlego-bench/v1", Window: opts.Cycles}
	var firstErr error
	for i, r := range results {
		jr := JSONResult{Design: cells[i].bm.Name, Engine: cells[i].eng.Name}
		switch {
		case !ranSet[i]:
			jr.Error = "not run: cancelled"
			rep.Incomplete = true
		case r.err != nil:
			jr.Error = r.err.Error()
			rep.Incomplete = true
			if firstErr == nil {
				firstErr = r.err
			}
		default:
			ns := 0.0
			if r.m.Cycles > 0 {
				ns = float64(r.m.Elapsed.Nanoseconds()) / float64(r.m.Cycles)
			}
			jr.Cycles = r.m.Cycles
			jr.NsPerCycle = ns
			jr.CyclesPerSec = r.m.CPS()
			jr.StateDigest = fmt.Sprintf("%016x", r.m.Digest)
		}
		rep.Results = append(rep.Results, jr)
	}
	if opts.DigestCheck && firstErr == nil {
		firstErr = checkDigests(rep.Results)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		return err
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	return firstErr
}

// checkDigests verifies that every engine that completed a design agrees on
// the final state digest — a lockstep-lite soundness gate cheap enough for
// CI smoke runs.
func checkDigests(results []JSONResult) error {
	first := map[string]JSONResult{}
	for _, r := range results {
		if r.Error != "" || r.StateDigest == "" {
			continue
		}
		ref, ok := first[r.Design]
		if !ok {
			first[r.Design] = r
			continue
		}
		if r.StateDigest != ref.StateDigest {
			return fmt.Errorf("bench: digest mismatch on %s: %s has %s, %s has %s",
				r.Design, ref.Engine, ref.StateDigest, r.Engine, r.StateDigest)
		}
	}
	return nil
}
