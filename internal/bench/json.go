// Machine-readable benchmark output, so successive PRs can track a
// BENCH_*.json performance trajectory instead of eyeballing table text.
package bench

import (
	"encoding/json"
	"io"

	"cuttlego/internal/circuit"
	"cuttlego/internal/cuttlesim"
	"cuttlego/internal/rtlsim"
)

// JSONResult is one (design, engine) timing in the stable export schema.
type JSONResult struct {
	Design       string  `json:"design"`
	Engine       string  `json:"engine"`
	Cycles       uint64  `json:"cycles"`
	NsPerCycle   float64 `json:"ns_per_cycle"`
	CyclesPerSec float64 `json:"cycles_per_sec"`
}

// JSONReport is the top-level export document.
type JSONReport struct {
	Schema  string       `json:"schema"`
	Window  uint64       `json:"window_cycles"`
	Results []JSONResult `json:"results"`
}

// jsonEngines is the engine set the JSON trajectory tracks: the paper's
// two headline pipelines plus the strengthened (netopt + fused) baseline
// and the switch interpreter as the floor.
func jsonEngines() []Engine {
	return []Engine{
		EngCuttlesim(cuttlesim.LStatic, cuttlesim.Closure),
		EngRTL(circuit.StyleKoika, rtlsim.Closure),
		EngRTL(circuit.StyleKoika, rtlsim.Switch),
		EngRTLOpt(circuit.StyleKoika, rtlsim.Fused, true),
	}
}

// WriteJSON measures every Table 1 benchmark against the tracked engine
// set and writes the report as indented JSON. Measurements fan out over
// the worker pool — timing one (design, engine) pair is independent of the
// others, and each job gets a fresh instance. Wall-clock numbers under
// contention are noisier than sequential ones; the schema records them
// per-instance either way, and the output ordering is deterministic.
func WriteJSON(w io.Writer, opts Options, workers int) error {
	type cell struct {
		bm  Benchmark
		eng Engine
	}
	var cells []cell
	for _, bm := range Suite() {
		for _, eng := range jsonEngines() {
			cells = append(cells, cell{bm, eng})
		}
	}
	type outcome struct {
		m   Measurement
		err error
	}
	results := RunParallel(len(cells), workers, func(i int) outcome {
		m, err := Measure(cells[i].bm, cells[i].eng, opts.Cycles)
		return outcome{m, err}
	})
	rep := JSONReport{Schema: "cuttlego-bench/v1", Window: opts.Cycles}
	for _, r := range results {
		if r.err != nil {
			return r.err
		}
		ns := 0.0
		if r.m.Cycles > 0 {
			ns = float64(r.m.Elapsed.Nanoseconds()) / float64(r.m.Cycles)
		}
		rep.Results = append(rep.Results, JSONResult{
			Design:       r.m.Benchmark,
			Engine:       r.m.Engine,
			Cycles:       r.m.Cycles,
			NsPerCycle:   ns,
			CyclesPerSec: r.m.CPS(),
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
