package bench_test

import (
	"strings"
	"testing"

	"cuttlego/internal/ast"
	"cuttlego/internal/bench"
	"cuttlego/internal/circuit"
	"cuttlego/internal/cuttlesim"
	"cuttlego/internal/interp"
	"cuttlego/internal/rtlsim"
	"cuttlego/internal/sim"
)

func TestSuiteBuildsAndRuns(t *testing.T) {
	for _, bm := range bench.Suite() {
		t.Run(bm.Name, func(t *testing.T) {
			m, err := bench.Measure(bm, bench.EngCuttlesim(cuttlesim.LStatic, cuttlesim.Closure), 2000)
			if err != nil {
				t.Fatal(err)
			}
			if m.CPS() <= 0 {
				t.Error("no throughput measured")
			}
		})
	}
}

func TestEnginesAgreeOnEveryBenchmark(t *testing.T) {
	cuttle := bench.EngCuttlesim(cuttlesim.LStatic, cuttlesim.Closure)
	rtl := bench.EngRTL(circuit.StyleKoika, rtlsim.Switch)
	interp := bench.EngInterp()
	for _, bm := range bench.Suite() {
		t.Run(bm.Name, func(t *testing.T) {
			if err := bench.Verify(bm, cuttle, rtl, 300); err != nil {
				t.Error(err)
			}
			if err := bench.Verify(bm, cuttle, interp, 300); err != nil {
				t.Error(err)
			}
		})
	}
}

func TestProcessorWorkloadsHalt(t *testing.T) {
	for _, bm := range bench.Suite() {
		if bm.Workload != "primes" {
			continue
		}
		if n, halted := bench.HaltCycles(bm, 60_000_000); !halted {
			t.Errorf("%s did not finish primes within budget", bm.Name)
		} else if n == 0 {
			t.Errorf("%s halted immediately", bm.Name)
		}
	}
}

func TestReportsRender(t *testing.T) {
	if testing.Short() {
		t.Skip("reports time real work")
	}
	opts := bench.Options{Cycles: 1500, HaltBudget: 30_000}
	var sb strings.Builder
	if err := bench.Table1(&sb, opts); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"collatz", "fir", "fft", "rv32i", "rv32e", "rv32i-bp", "rv32i-mc", "koika-sloc"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("Table1 missing %q", want)
		}
	}
	sb.Reset()
	if err := bench.Fig1(&sb, opts); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"rtl-koika", "rtl-opt", "vs naive", "vs opt"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("Fig1 missing %q", want)
		}
	}
	sb.Reset()
	if err := bench.Fig2(&sb, opts); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "rtl-bsc") {
		t.Error("Fig2 malformed")
	}
	sb.Reset()
	if err := bench.Fig3(&sb, opts); err != nil {
		t.Fatal(err)
	}
	sb.Reset()
	if err := bench.Ablation(&sb, opts); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "naive") || !strings.Contains(sb.String(), "static") {
		t.Error("Ablation malformed")
	}
}

// The headline claim: on control-heavy designs, the Cuttlesim pipeline is
// faster than the circuit-level pipeline; the ladder's top level beats its
// bottom.
func TestPaperShapeHolds(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive")
	}
	bm := bench.Suite()[3] // rv32i
	cycles := uint64(60_000)
	mc, err := bench.Measure(bm, bench.EngCuttlesim(cuttlesim.LStatic, cuttlesim.Closure), cycles)
	if err != nil {
		t.Fatal(err)
	}
	mr, err := bench.Measure(bm, bench.EngRTL(circuit.StyleKoika, rtlsim.Closure), cycles)
	if err != nil {
		t.Fatal(err)
	}
	if mc.CPS() <= mr.CPS() {
		t.Errorf("Cuttlesim (%.0f cyc/s) should beat circuit-level simulation (%.0f cyc/s) on rv32i",
			mc.CPS(), mr.CPS())
	}
	// The ladder's top beats its bottom. The gap is tens of percent, so
	// take the best of three runs per level to ride out scheduler noise on
	// shared machines.
	best := func(eng bench.Engine) float64 {
		var out float64
		for i := 0; i < 3; i++ {
			m, err := bench.Measure(bm, eng, cycles)
			if err != nil {
				t.Fatal(err)
			}
			if m.CPS() > out {
				out = m.CPS()
			}
		}
		return out
	}
	static := best(bench.EngCuttlesim(cuttlesim.LStatic, cuttlesim.Closure))
	naive := best(bench.EngCuttlesim(cuttlesim.LNaive, cuttlesim.Closure))
	if static <= naive {
		t.Errorf("LStatic (%.0f cyc/s) should beat LNaive (%.0f cyc/s)", static, naive)
	}
}

func TestStateStressConformance(t *testing.T) {
	build := func() *ast.Design { return bench.StateStress(64, 4) }
	ref, err := interp.New(build().MustCheck())
	if err != nil {
		t.Fatal(err)
	}
	engines := map[string]sim.Engine{"interp": ref}
	for _, level := range cuttlesim.Levels() {
		engines[level.String()] = cuttlesim.MustNew(build().MustCheck(), cuttlesim.Options{Level: level})
	}
	d := ref.Design()
	for cycle := 0; cycle < 100; cycle++ {
		for _, e := range engines {
			e.Cycle()
		}
		want := sim.StateOf(ref)
		for name, e := range engines {
			got := sim.StateOf(e)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("cycle %d: %s reg %s diverged", cycle, name, d.Registers[i].Name)
				}
			}
		}
	}
}

func TestStressLadderPaysOff(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive")
	}
	bm := bench.Benchmark{Name: "stress", New: func() bench.Instance {
		return bench.Instance{Design: bench.StateStress(512, 4).MustCheck()}
	}}
	best := func(level cuttlesim.Level) float64 {
		var out float64
		for i := 0; i < 3; i++ {
			m, err := bench.Measure(bm, bench.EngCuttlesim(level, cuttlesim.Closure), 20_000)
			if err != nil {
				t.Fatal(err)
			}
			if m.CPS() > out {
				out = m.CPS()
			}
		}
		return out
	}
	naive := best(cuttlesim.LNaive)
	static := best(cuttlesim.LStatic)
	if static < 4*naive {
		t.Errorf("on the state-stress design LStatic (%.0f cyc/s) should be several times LNaive (%.0f cyc/s)", static, naive)
	}
}
