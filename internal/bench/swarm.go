package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"
)

// Swarm report types: the machine-readable output of kbench -swarm, the
// fleet-scale load generator (BENCH_5.json). The driving loop lives in
// cmd/kbench (it needs the HTTP client); this file is the pure data side —
// latency percentiles, memory-amplification arithmetic, and the JSON/text
// renderers — so it can be unit-tested without a fleet.

// SwarmSchema identifies the swarm report document.
const SwarmSchema = "cuttlego-swarm/v1"

// LatencyStats summarizes one operation's latency distribution.
type LatencyStats struct {
	Count  int     `json:"count"`
	MeanMs float64 `json:"mean_ms"`
	P50Ms  float64 `json:"p50_ms"`
	P90Ms  float64 `json:"p90_ms"`
	P99Ms  float64 `json:"p99_ms"`
	MaxMs  float64 `json:"max_ms"`
}

// Latency computes percentile stats over samples (nearest-rank on the
// sorted sample set; an empty set reports zeros).
func Latency(samples []time.Duration) LatencyStats {
	if len(samples) == 0 {
		return LatencyStats{}
	}
	sorted := make([]time.Duration, len(samples))
	copy(sorted, samples)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var sum time.Duration
	for _, d := range sorted {
		sum += d
	}
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	rank := func(p float64) time.Duration {
		i := int(p*float64(len(sorted))+0.5) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(sorted) {
			i = len(sorted) - 1
		}
		return sorted[i]
	}
	return LatencyStats{
		Count:  len(sorted),
		MeanMs: ms(sum / time.Duration(len(sorted))),
		P50Ms:  ms(rank(0.50)),
		P90Ms:  ms(rank(0.90)),
		P99Ms:  ms(rank(0.99)),
		MaxMs:  ms(sorted[len(sorted)-1]),
	}
}

// SwarmMemory is the fleet's heap story across the run's three plateaus:
// idle, after the full sessions exist, and after the fork storm. The
// amplification ratio is the punchline — copy-on-write forks should cost a
// small fraction of a full session.
type SwarmMemory struct {
	BaselineHeapBytes uint64  `json:"baseline_heap_bytes"`
	SessionsHeapBytes uint64  `json:"sessions_heap_bytes"`
	ForksHeapBytes    uint64  `json:"forks_heap_bytes"`
	BytesPerSession   float64 `json:"bytes_per_session"`
	BytesPerFork      float64 `json:"bytes_per_fork"`
	// ForkAmplification is BytesPerFork / BytesPerSession: 1.0 would mean a
	// fork costs as much as a full session (the pre-CoW behavior), and
	// sublinear fork memory growth shows up as a ratio well under 1.
	ForkAmplification float64 `json:"fork_amplification"`
	// LazyForks is how many forks were still unmaterialized (engineless) at
	// the end of the storm.
	LazyForks int `json:"lazy_forks"`
}

// Amplify fills the derived fields from the raw plateaus.
func (m *SwarmMemory) Amplify(sessions, forks int) {
	if sessions > 0 && m.SessionsHeapBytes > m.BaselineHeapBytes {
		m.BytesPerSession = float64(m.SessionsHeapBytes-m.BaselineHeapBytes) / float64(sessions)
	}
	if forks > 0 && m.ForksHeapBytes > m.SessionsHeapBytes {
		m.BytesPerFork = float64(m.ForksHeapBytes-m.SessionsHeapBytes) / float64(forks)
	}
	if m.BytesPerSession > 0 {
		m.ForkAmplification = m.BytesPerFork / m.BytesPerSession
	}
}

// SwarmReport is the cuttlego-swarm/v1 document.
type SwarmReport struct {
	Schema          string  `json:"schema"`
	URL             string  `json:"url"`
	Design          string  `json:"design"`
	Sessions        int     `json:"sessions"`
	ForksPerSession int     `json:"forks_per_session"`
	ArrivalPerSec   float64 `json:"arrival_per_sec"`
	StepCycles      uint64  `json:"step_cycles"`

	Steps  uint64 `json:"steps"`
	Errors uint64 `json:"errors"`
	// Shed counts 429/503 answers — the fleet refusing load is expected
	// behavior under an open loop, tracked separately from real errors.
	Shed      uint64 `json:"shed"`
	Evictions uint64 `json:"evictions"` // fleet eviction churn during the run
	Forks     uint64 `json:"forks"`
	// Migrations is how many live migrations completed; DigestChecks /
	// DigestMismatches is the StateDigest parity gate across forks and
	// migrations (any mismatch fails the run).
	Migrations       int `json:"migrations"`
	DigestChecks     int `json:"digest_checks"`
	DigestMismatches int `json:"digest_mismatches"`

	StepLatency LatencyStats `json:"step_latency"`
	ForkLatency LatencyStats `json:"fork_latency"`
	Memory      SwarmMemory  `json:"memory"`
	WallSec     float64      `json:"wall_sec"`
	Incomplete  bool         `json:"incomplete,omitempty"`
}

// EncodeSwarm writes the JSON document.
func EncodeSwarm(w io.Writer, rep SwarmReport) error {
	rep.Schema = SwarmSchema
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// RenderSwarm writes the human-readable summary.
func RenderSwarm(w io.Writer, rep SwarmReport) {
	fmt.Fprintf(w, "swarm: %d sessions of %s @ %.1f/s against %s\n",
		rep.Sessions, rep.Design, rep.ArrivalPerSec, rep.URL)
	fmt.Fprintf(w, "  steps      %d x %d cycles (%d errors, %d shed, %d evictions)\n",
		rep.Steps, rep.StepCycles, rep.Errors, rep.Shed, rep.Evictions)
	fmt.Fprintf(w, "  step p50/p90/p99  %.2f / %.2f / %.2f ms (max %.2f)\n",
		rep.StepLatency.P50Ms, rep.StepLatency.P90Ms, rep.StepLatency.P99Ms, rep.StepLatency.MaxMs)
	if rep.Forks > 0 {
		fmt.Fprintf(w, "  forks      %d (%d still lazy); fork p50/p99  %.2f / %.2f ms\n",
			rep.Forks, rep.Memory.LazyForks, rep.ForkLatency.P50Ms, rep.ForkLatency.P99Ms)
		fmt.Fprintf(w, "  memory     %.0f B/session, %.0f B/fork (amplification %.3f)\n",
			rep.Memory.BytesPerSession, rep.Memory.BytesPerFork, rep.Memory.ForkAmplification)
	}
	fmt.Fprintf(w, "  migrations %d; digest parity %d/%d ok; wall %.1fs\n",
		rep.Migrations, rep.DigestChecks-rep.DigestMismatches, rep.DigestChecks, rep.WallSec)
}
