package native_test

import (
	"encoding/json"
	"os"
	"path/filepath"
	"sync"
	"syscall"
	"testing"
	"time"

	"cuttlego/internal/ast"
	"cuttlego/internal/bench"
	"cuttlego/internal/faultinj"
	"cuttlego/internal/gomodel"
	"cuttlego/internal/interp"
	"cuttlego/internal/native"
	"cuttlego/internal/sim"
)

func openCache(t *testing.T, opts native.CacheOptions) *native.Cache {
	t.Helper()
	c, err := native.OpenCache(t.TempDir(), opts)
	if err != nil {
		t.Fatalf("OpenCache: %v", err)
	}
	return c
}

func launch(t *testing.T, c *native.Cache, d *ast.Design, b *gomodel.Bindings) *native.Engine {
	t.Helper()
	e, err := c.Engine(d, b)
	if err != nil {
		t.Fatalf("Engine(%s): %v", d.Name, err)
	}
	t.Cleanup(func() { e.Close() })
	return e
}

// TestLockstepStandalone runs zoo designs (no external functions) under the
// native tier and the reference interpreter and demands state-digest
// equality plus identical fired-rule sets on every single cycle.
func TestLockstepStandalone(t *testing.T) {
	designs := []*ast.Design{
		bench.CollatzBench(27).MustCheck(),
		bench.FFTBench(8).MustCheck(),
		bench.IdleBench(8, 3).MustCheck(),
	}
	c := openCache(t, native.CacheOptions{})
	for _, d := range designs {
		t.Run(d.Name, func(t *testing.T) {
			ref, err := interp.New(d)
			if err != nil {
				t.Fatalf("interp: %v", err)
			}
			eng := launch(t, c, d, nil)
			for cyc := 0; cyc < 300; cyc++ {
				ref.Cycle()
				eng.Cycle()
				if a, b := sim.StateDigest(ref), sim.StateDigest(eng); a != b {
					t.Fatalf("cycle %d: interp digest %016x, native %016x", cyc+1, a, b)
				}
				for _, r := range d.Rules {
					if ref.RuleFired(r.Name) != eng.RuleFired(r.Name) {
						t.Fatalf("cycle %d: rule %s fired=%v under interp, %v under native",
							cyc+1, r.Name, ref.RuleFired(r.Name), eng.RuleFired(r.Name))
					}
				}
				if eng.CycleCount() != ref.CycleCount() {
					t.Fatalf("cycle count drift: interp %d native %d", ref.CycleCount(), eng.CycleCount())
				}
			}
		})
	}
}

// TestLockstepRV32I runs the rv32i benchmark (external memory functions plus
// the write-port drain testbench, both embedded in the native binary) in
// per-cycle lockstep against the reference interpreter driven by the
// in-process testbench.
func TestLockstepRV32I(t *testing.T) {
	bm := findBench(t, "rv32i")
	refInst, natInst := bm.New(), bm.New()
	ref, err := interp.New(refInst.Design)
	if err != nil {
		t.Fatalf("interp: %v", err)
	}
	c := openCache(t, native.CacheOptions{})
	eng := launch(t, c, natInst.Design, natInst.Native)
	for cyc := 0; cyc < 400; cyc++ {
		refInst.Bench.BeforeCycle(ref)
		ref.Cycle()
		refInst.Bench.AfterCycle(ref)
		eng.Cycle()
		if a, b := sim.StateDigest(ref), sim.StateDigest(eng); a != b {
			t.Fatalf("cycle %d: interp digest %016x, native %016x", cyc+1, a, b)
		}
	}
}

func findBench(t *testing.T, name string) bench.Benchmark {
	t.Helper()
	for _, bm := range bench.Suite() {
		if bm.Name == name {
			return bm
		}
	}
	t.Fatalf("benchmark %q not in suite", name)
	return bench.Benchmark{}
}

// TestSnapshotRestorePoke exercises the state-transfer surface the tiered
// server depends on: snapshot/restore determinism and poke visibility.
func TestSnapshotRestorePoke(t *testing.T) {
	d := bench.CollatzBench(27).MustCheck()
	c := openCache(t, native.CacheOptions{})
	eng := launch(t, c, d, nil)

	if err := eng.StepN(10); err != nil {
		t.Fatalf("StepN: %v", err)
	}
	snap := eng.Snapshot()
	if snap.Cycle != 10 {
		t.Fatalf("snapshot cycle = %d, want 10", snap.Cycle)
	}
	if err := eng.StepN(50); err != nil {
		t.Fatalf("StepN: %v", err)
	}
	d1 := sim.StateDigest(eng)
	eng.Restore(snap)
	if eng.CycleCount() != 10 {
		t.Fatalf("cycle count after restore = %d, want 10", eng.CycleCount())
	}
	if err := eng.StepN(50); err != nil {
		t.Fatalf("StepN: %v", err)
	}
	if d2 := sim.StateDigest(eng); d2 != d1 {
		t.Fatalf("replay after restore diverged: %016x vs %016x", d2, d1)
	}

	eng.SetReg("x", eng.Reg("x").Not()) // arbitrary poke
	want := eng.Reg("x")
	snap2 := eng.Snapshot()
	if got := snap2.WideReg(d.RegIndex("x")).Bits().Val; got != want.Val {
		t.Fatalf("poke not visible in snapshot: %#x want %#x", got, want.Val)
	}

	prof, err := eng.Profile()
	if err != nil {
		t.Fatalf("Profile: %v", err)
	}
	var commits uint64
	for _, p := range prof {
		commits += p.Commits
	}
	if commits == 0 {
		t.Fatalf("profile reports zero commits after 110 cycles: %+v", prof)
	}
}

// TestSingleflight builds the same design from 8 goroutines at once and
// demands exactly one go-build underneath them all.
func TestSingleflight(t *testing.T) {
	d := bench.CollatzBench(5).MustCheck()
	c := openCache(t, native.CacheOptions{})
	var wg sync.WaitGroup
	paths := make([]string, 8)
	errs := make([]error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := c.Build(d, nil)
			paths[i], errs[i] = res.Path, err
		}(i)
	}
	wg.Wait()
	for i := range errs {
		if errs[i] != nil {
			t.Fatalf("build %d: %v", i, errs[i])
		}
		if paths[i] != paths[0] {
			t.Fatalf("build %d produced %s, build 0 produced %s", i, paths[i], paths[0])
		}
	}
	st := c.StatsSnapshot()
	if st.Builds != 1 {
		t.Fatalf("8 concurrent builds ran %d compiles, want exactly 1", st.Builds)
	}
	if st.Misses != 1 {
		t.Fatalf("misses = %d, want 1", st.Misses)
	}
	res, err := c.Build(d, nil)
	if err != nil || !res.Cached {
		t.Fatalf("warm rebuild: cached=%v err=%v", res.Cached, err)
	}
	if st := c.StatsSnapshot(); st.Hits != 1 {
		t.Fatalf("hits = %d, want 1", st.Hits)
	}
}

// TestLRUEviction caps the cache so small that every new entry evicts the
// previous one.
func TestLRUEviction(t *testing.T) {
	c := openCache(t, native.CacheOptions{MaxBytes: 1})
	r1, err := c.Build(bench.CollatzBench(1).MustCheck(), nil)
	if err != nil {
		t.Fatalf("build 1: %v", err)
	}
	if _, err := c.Build(bench.CollatzBench(2).MustCheck(), nil); err != nil {
		t.Fatalf("build 2: %v", err)
	}
	st := c.StatsSnapshot()
	if st.Evictions != 1 || st.Entries != 1 {
		t.Fatalf("evictions=%d entries=%d, want 1/1", st.Evictions, st.Entries)
	}
	if _, err := os.Stat(r1.Path); !os.IsNotExist(err) {
		t.Fatalf("evicted binary still on disk: %v", err)
	}
	// The evicted design misses again and recompiles.
	r3, err := c.Build(bench.CollatzBench(1).MustCheck(), nil)
	if err != nil || r3.Cached {
		t.Fatalf("rebuild after eviction: cached=%v err=%v", r3.Cached, err)
	}
}

// TestStaleToolchainSweep doctors an entry's recorded toolchain and reopens
// the cache: the entry must be swept, not served.
func TestStaleToolchainSweep(t *testing.T) {
	dir := t.TempDir()
	c, err := native.OpenCache(dir, native.CacheOptions{})
	if err != nil {
		t.Fatalf("OpenCache: %v", err)
	}
	res, err := c.Build(bench.CollatzBench(3).MustCheck(), nil)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	metaPath := filepath.Join(dir, res.Key, "meta.json")
	raw, err := os.ReadFile(metaPath)
	if err != nil {
		t.Fatalf("read meta: %v", err)
	}
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatalf("meta json: %v", err)
	}
	m["toolchain"] = "go0.0-ancient"
	doctored, _ := json.Marshal(m)
	if err := os.WriteFile(metaPath, doctored, 0o644); err != nil {
		t.Fatalf("write meta: %v", err)
	}
	c2, err := native.OpenCache(dir, native.CacheOptions{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	st := c2.StatsSnapshot()
	if st.StaleSwept != 1 || st.Entries != 0 {
		t.Fatalf("stale_swept=%d entries=%d, want 1/0", st.StaleSwept, st.Entries)
	}
	if _, err := os.Stat(filepath.Join(dir, res.Key)); !os.IsNotExist(err) {
		t.Fatalf("stale entry still on disk: %v", err)
	}
}

// TestCorruptBinaryQuarantine flips bytes in a cached binary; the next
// lookup must detect the digest mismatch, quarantine the entry, and
// recompile rather than serve bad bytes.
func TestCorruptBinaryQuarantine(t *testing.T) {
	dir := t.TempDir()
	c, err := native.OpenCache(dir, native.CacheOptions{})
	if err != nil {
		t.Fatalf("OpenCache: %v", err)
	}
	d := bench.CollatzBench(7).MustCheck()
	res, err := c.Build(d, nil)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	raw, err := os.ReadFile(res.Path)
	if err != nil {
		t.Fatalf("read binary: %v", err)
	}
	raw[len(raw)/2] ^= 0xff
	if err := os.WriteFile(res.Path, raw, 0o755); err != nil {
		t.Fatalf("corrupt binary: %v", err)
	}
	res2, err := c.Build(d, nil)
	if err != nil {
		t.Fatalf("rebuild: %v", err)
	}
	if res2.Cached {
		t.Fatalf("corrupt entry served as a warm hit")
	}
	st := c.StatsSnapshot()
	if st.Quarantined != 1 || st.Builds != 2 {
		t.Fatalf("quarantined=%d builds=%d, want 1/2", st.Quarantined, st.Builds)
	}
	if _, err := os.Stat(filepath.Join(dir, res.Key+".corrupt-1")); err != nil {
		t.Fatalf("quarantine directory missing: %v", err)
	}
}

// TestTornReadQuarantine reuses the fault-injection filesystem: a torn read
// of the cached binary during hit verification must quarantine and rebuild,
// not launch half a binary.
func TestTornReadQuarantine(t *testing.T) {
	// fs.read call 1 hashes the binary at compile time; call 2 is the warm-hit
	// verification, which the tear hits.
	inj := faultinj.New(1, faultinj.Rule{Op: "fs.read", Nth: 2, Kind: faultinj.Tear})
	c := openCache(t, native.CacheOptions{FS: faultinj.NewFS(faultinj.OS(), inj)})
	d := bench.CollatzBench(9).MustCheck()
	if _, err := c.Build(d, nil); err != nil {
		t.Fatalf("build: %v", err)
	}
	res, err := c.Build(d, nil)
	if err != nil {
		t.Fatalf("rebuild through torn read: %v", err)
	}
	if res.Cached {
		t.Fatalf("torn entry served as warm hit")
	}
	st := c.StatsSnapshot()
	if st.Quarantined != 1 || st.Builds != 2 {
		t.Fatalf("quarantined=%d builds=%d, want 1/2", st.Quarantined, st.Builds)
	}
}

// TestHandshakeDigestGate swaps one design's cached binary for another
// design's (fixing up the recorded digest so byte verification passes): the
// launch handshake must reject it on design-hash grounds, quarantine, and
// rebuild the right binary.
func TestHandshakeDigestGate(t *testing.T) {
	dir := t.TempDir()
	c, err := native.OpenCache(dir, native.CacheOptions{})
	if err != nil {
		t.Fatalf("OpenCache: %v", err)
	}
	dA := bench.CollatzBench(11).MustCheck()
	dB := bench.IdleBench(4, 2).MustCheck()
	resA, err := c.Build(dA, nil)
	if err != nil {
		t.Fatalf("build A: %v", err)
	}
	resB, err := c.Build(dB, nil)
	if err != nil {
		t.Fatalf("build B: %v", err)
	}
	// Overwrite A's binary with B's and make A's metadata vouch for it.
	binB, err := os.ReadFile(resB.Path)
	if err != nil {
		t.Fatalf("read B: %v", err)
	}
	if err := os.WriteFile(resA.Path, binB, 0o755); err != nil {
		t.Fatalf("swap binary: %v", err)
	}
	metaPathA := filepath.Join(dir, resA.Key, "meta.json")
	rawA, _ := os.ReadFile(metaPathA)
	rawB, _ := os.ReadFile(filepath.Join(dir, resB.Key, "meta.json"))
	var mA, mB map[string]any
	json.Unmarshal(rawA, &mA)
	json.Unmarshal(rawB, &mB)
	mA["bin_sha256"] = mB["bin_sha256"]
	mA["size_bytes"] = mB["size_bytes"]
	doctored, _ := json.Marshal(mA)
	if err := os.WriteFile(metaPathA, doctored, 0o644); err != nil {
		t.Fatalf("doctor meta: %v", err)
	}

	c2, err := native.OpenCache(dir, native.CacheOptions{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	eng, err := c2.Engine(dA, nil)
	if err != nil {
		t.Fatalf("Engine through swapped binary: %v", err)
	}
	defer eng.Close()
	st := c2.StatsSnapshot()
	if st.Quarantined != 1 || st.Builds != 1 {
		t.Fatalf("quarantined=%d builds=%d, want 1/1", st.Quarantined, st.Builds)
	}
	// The relaunched engine simulates the right design.
	ref, _ := interp.New(dA)
	ref.Cycle()
	eng.Cycle()
	if a, b := sim.StateDigest(ref), sim.StateDigest(eng); a != b {
		t.Fatalf("post-quarantine engine diverges: %016x vs %016x", a, b)
	}
}

// TestCrashIsSticky kills the subprocess out from under the engine and
// checks that the failure is reported honestly — once, then on every
// subsequent call — rather than hanging or lying.
func TestCrashIsSticky(t *testing.T) {
	d := bench.CollatzBench(13).MustCheck()
	c := openCache(t, native.CacheOptions{})
	eng := launch(t, c, d, nil)
	if err := eng.StepN(5); err != nil {
		t.Fatalf("StepN: %v", err)
	}
	syscall.Kill(eng.Pid(), syscall.SIGKILL)
	var err error
	for i := 0; i < 3; i++ { // the pipe may absorb one write
		if err = eng.StepN(1); err != nil {
			break
		}
	}
	if err == nil {
		t.Fatalf("StepN kept succeeding after subprocess kill")
	}
	if eng.Dead() == nil {
		t.Fatalf("Dead() nil after crash")
	}
	if err2 := eng.StepN(1); err2 == nil {
		t.Fatalf("sticky failure not sticky")
	}
	if err := eng.Close(); err != nil {
		t.Fatalf("Close after crash: %v", err)
	}
}

// TestReaperKillAll launches an engine, does not close it, and checks that
// KillAll terminates the subprocess and empties the registry — the no-orphan
// guarantee daemon shutdown depends on.
func TestReaperKillAll(t *testing.T) {
	if native.Live() != 0 {
		t.Fatalf("leaked subprocesses from earlier tests: %d", native.Live())
	}
	d := bench.CollatzBench(17).MustCheck()
	c := openCache(t, native.CacheOptions{})
	eng, err := c.Engine(d, nil)
	if err != nil {
		t.Fatalf("Engine: %v", err)
	}
	if native.Live() != 1 {
		t.Fatalf("Live() = %d, want 1", native.Live())
	}
	pid := eng.Pid()
	if n := native.KillAll(5 * time.Second); n != 1 {
		t.Fatalf("KillAll signaled %d, want 1", n)
	}
	if native.Live() != 0 {
		t.Fatalf("Live() = %d after KillAll, want 0", native.Live())
	}
	// The child has been waited on, so its pid no longer exists.
	if err := syscall.Kill(pid, 0); err != syscall.ESRCH {
		t.Fatalf("subprocess %d still exists after KillAll (kill 0 = %v)", pid, err)
	}
	eng.Close()
}
