package native

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os/exec"
	"sync"
	"syscall"
	"time"

	"cuttlego/internal/ast"
	"cuttlego/internal/bits"
	"cuttlego/internal/gomodel"
	"cuttlego/internal/sim"
)

// handshakeTimeout bounds how long a freshly spawned binary may take to
// identify itself; a corrupt or wedged binary is killed rather than waited
// on forever.
const handshakeTimeout = 30 * time.Second

// maxFrame bounds a response frame; mirrors the emitted program's own
// request bound.
const maxFrame = 1 << 26

// RemoteError is a protocol-level refusal from the simulator subprocess
// (bad restore bytes, out-of-range register index). The subprocess is still
// healthy after one; transport failures are sticky and reported as crash
// errors instead.
type RemoteError struct{ Msg string }

func (e *RemoteError) Error() string { return "native: remote: " + e.Msg }

// RuleProfile is one rule's servo-side counters.
type RuleProfile struct {
	Rule     string
	Attempts uint64
	Commits  uint64
	Skips    uint64
}

// Engine supervises one compiled simulator subprocess and exposes it as a
// sim.Engine (plus sim.Snapshotter and sim.Advancer). The error-returning
// methods (StepN, Peek, ...) are the primary API; the sim.Engine methods
// wrap them and panic on subprocess failure, which upstream diag.Guard
// boundaries convert into honest *diag.Internal errors.
//
// Register reads are served from a local mirror refreshed with one peek-all
// round trip after each step, so digesting the full architectural state
// costs one RPC, not one per register.
type Engine struct {
	design  *ast.Design
	key     string
	regIdx  map[string]int
	ruleIdx map[string]int

	cmd    *exec.Cmd
	stdin  *bufio.Writer
	inPipe io.WriteCloser
	out    *bufio.Reader
	errs   *tailBuf
	reap   *reapEntry

	waitDone chan struct{}
	waitErr  error

	mu       sync.Mutex
	dead     error
	closed   bool
	cycles   uint64
	fired    []byte
	mirror   []uint64
	mirrorOK bool
}

var (
	_ sim.Engine      = (*Engine)(nil)
	_ sim.Snapshotter = (*Engine)(nil)
	_ sim.Advancer    = (*Engine)(nil)
)

// Launch spawns a compiled servo binary and performs the handshake,
// verifying that the binary simulates exactly the design the caller thinks
// it does (design hash, register and rule counts) before any step runs.
func Launch(d *ast.Design, res BuildResult) (*Engine, error) {
	cmd := exec.Command(res.Path)
	cmd.SysProcAttr = &syscall.SysProcAttr{Setpgid: true}
	inPipe, err := cmd.StdinPipe()
	if err != nil {
		return nil, fmt.Errorf("native: launch: %w", err)
	}
	outPipe, err := cmd.StdoutPipe()
	if err != nil {
		return nil, fmt.Errorf("native: launch: %w", err)
	}
	errs := &tailBuf{}
	cmd.Stderr = errs
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("native: launch %s: %w", res.Path, err)
	}
	e := &Engine{
		design:   d,
		key:      res.Key,
		regIdx:   make(map[string]int, len(d.Registers)),
		ruleIdx:  make(map[string]int, len(d.Rules)),
		cmd:      cmd,
		stdin:    bufio.NewWriter(inPipe),
		inPipe:   inPipe,
		out:      bufio.NewReader(outPipe),
		errs:     errs,
		waitDone: make(chan struct{}),
		fired:    make([]byte, (len(d.Rules)+7)/8),
		mirror:   make([]uint64, len(d.Registers)),
	}
	for i, r := range d.Registers {
		e.regIdx[r.Name] = i
	}
	for i, r := range d.Rules {
		e.ruleIdx[r.Name] = i
	}
	e.reap = &reapEntry{pid: cmd.Process.Pid, done: e.waitDone}
	reaperAdd(e.reap)
	go func() {
		e.waitErr = cmd.Wait()
		close(e.waitDone)
	}()

	// A corrupt binary may never speak; bound the handshake.
	hsTimer := time.AfterFunc(handshakeTimeout, func() {
		syscall.Kill(-e.reap.pid, syscall.SIGKILL)
	})
	err = e.handshake(res.DesignHash)
	hsTimer.Stop()
	if err != nil {
		e.kill()
		reaperRemove(e.reap)
		return nil, err
	}
	return e, nil
}

func (e *Engine) handshake(wantHash uint64) error {
	payload, err := e.readResp()
	if err != nil {
		return fmt.Errorf("native: handshake: %w", err)
	}
	if len(payload) != 22 || string(payload[:4]) != "KSRV" {
		return fmt.Errorf("native: handshake: malformed identification (%d bytes)", len(payload))
	}
	if v := binary.LittleEndian.Uint16(payload[4:6]); v != gomodel.ProtocolVersion {
		return fmt.Errorf("native: handshake: protocol version %d (want %d)", v, gomodel.ProtocolVersion)
	}
	if h := binary.LittleEndian.Uint64(payload[6:14]); h != wantHash {
		return fmt.Errorf("native: handshake: design hash %016x, want %016x — cached binary simulates a different design", h, wantHash)
	}
	if n := binary.LittleEndian.Uint32(payload[14:18]); n != uint32(len(e.design.Registers)) {
		return fmt.Errorf("native: handshake: %d registers, want %d", n, len(e.design.Registers))
	}
	if n := binary.LittleEndian.Uint32(payload[18:22]); n != uint32(len(e.design.Rules)) {
		return fmt.Errorf("native: handshake: %d rules, want %d", n, len(e.design.Rules))
	}
	return nil
}

// tailBuf keeps the last few KB of the child's stderr for crash reports.
type tailBuf struct {
	mu  sync.Mutex
	buf []byte
}

func (t *tailBuf) Write(p []byte) (int, error) {
	t.mu.Lock()
	t.buf = append(t.buf, p...)
	if len(t.buf) > 4096 {
		t.buf = t.buf[len(t.buf)-4096:]
	}
	t.mu.Unlock()
	return len(p), nil
}

func (t *tailBuf) tail() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	return string(t.buf)
}

func (e *Engine) kill() {
	syscall.Kill(-e.reap.pid, syscall.SIGKILL)
	select {
	case <-e.waitDone:
	case <-time.After(10 * time.Second):
	}
}

// fail records a sticky transport failure: the subprocess is killed, waited
// on, and every future call reports the composed crash error.
func (e *Engine) fail(err error) error {
	if e.dead != nil {
		return e.dead
	}
	e.kill()
	msg := fmt.Sprintf("native: simulator subprocess failed: %v", err)
	if tail := e.errs.tail(); tail != "" {
		msg += "\nstderr: " + tail
	}
	e.dead = fmt.Errorf("%s", msg)
	return e.dead
}

// Pid returns the subprocess pid (for tests and diagnostics).
func (e *Engine) Pid() int { return e.reap.pid }

// Dead returns the sticky subprocess failure, if any.
func (e *Engine) Dead() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.dead
}

func (e *Engine) writeFrame(op byte, payload []byte) error {
	var hdr [5]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(1+len(payload)))
	hdr[4] = op
	if _, err := e.stdin.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := e.stdin.Write(payload); err != nil {
		return err
	}
	return e.stdin.Flush()
}

func (e *Engine) readResp() ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(e.out, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n == 0 || n > maxFrame {
		return nil, fmt.Errorf("frame length %d out of range", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(e.out, buf); err != nil {
		return nil, err
	}
	if buf[0] == 'E' {
		return nil, &RemoteError{Msg: string(buf[1:])}
	}
	if buf[0] != 'K' {
		return nil, fmt.Errorf("unknown response status %#x", buf[0])
	}
	return buf[1:], nil
}

// callLocked performs one request/response round trip. Transport failures
// become sticky; RemoteErrors pass through without poisoning the engine.
func (e *Engine) callLocked(op byte, payload []byte) ([]byte, error) {
	if e.dead != nil {
		return nil, e.dead
	}
	if e.closed {
		return nil, fmt.Errorf("native: engine closed")
	}
	if err := e.writeFrame(op, payload); err != nil {
		return nil, e.fail(err)
	}
	resp, err := e.readResp()
	if err != nil {
		var re *RemoteError
		if asRemote(err, &re) {
			return nil, err
		}
		return nil, e.fail(err)
	}
	return resp, nil
}

func asRemote(err error, out **RemoteError) bool {
	re, ok := err.(*RemoteError)
	if ok {
		*out = re
	}
	return ok
}

// StepN executes n cycles in the subprocess (one round trip) and refreshes
// the cycle counter and fired flags.
func (e *Engine) StepN(n uint64) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	resp, err := e.callLocked('s', binary.LittleEndian.AppendUint64(nil, n))
	if err != nil {
		return err
	}
	if len(resp) != 8+len(e.fired) {
		return e.fail(fmt.Errorf("step: response length %d", len(resp)))
	}
	e.cycles = binary.LittleEndian.Uint64(resp[:8])
	copy(e.fired, resp[8:])
	e.mirrorOK = false
	return nil
}

// PeekAll refreshes the local register mirror with one round trip.
func (e *Engine) PeekAll() ([]uint64, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.refreshLocked(); err != nil {
		return nil, err
	}
	out := make([]uint64, len(e.mirror))
	copy(out, e.mirror)
	return out, nil
}

func (e *Engine) refreshLocked() error {
	if e.mirrorOK {
		return nil
	}
	resp, err := e.callLocked('A', nil)
	if err != nil {
		return err
	}
	if len(resp) != 8*len(e.mirror) {
		return e.fail(fmt.Errorf("peek-all: response length %d", len(resp)))
	}
	for i := range e.mirror {
		e.mirror[i] = binary.LittleEndian.Uint64(resp[8*i:])
	}
	e.mirrorOK = true
	return nil
}

// Poke overwrites register i.
func (e *Engine) Poke(i int, v uint64) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	payload := binary.LittleEndian.AppendUint32(nil, uint32(i))
	payload = binary.LittleEndian.AppendUint64(payload, v)
	if _, err := e.callLocked('P', payload); err != nil {
		return err
	}
	if e.mirrorOK {
		e.mirror[i] = v & bits.Mask(e.design.Registers[i].Type.BitWidth())
	}
	return nil
}

// TakeSnapshot captures the subprocess state as a sim.Snapshot.
func (e *Engine) TakeSnapshot() (sim.Snapshot, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	resp, err := e.callLocked('S', nil)
	if err != nil {
		return sim.Snapshot{}, err
	}
	var s sim.Snapshot
	if err := s.UnmarshalBinary(resp); err != nil {
		return sim.Snapshot{}, e.fail(fmt.Errorf("snapshot: %w", err))
	}
	return s, nil
}

// RestoreSnapshot rewinds the subprocess to a captured snapshot.
func (e *Engine) RestoreSnapshot(s sim.Snapshot) error {
	raw, err := s.MarshalBinary()
	if err != nil {
		return err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, err := e.callLocked('R', raw); err != nil {
		return err
	}
	e.cycles = s.Cycle
	for i := range e.fired {
		e.fired[i] = 0
	}
	e.mirrorOK = false
	return nil
}

// Profile fetches the per-rule attempt/commit/skip counters.
func (e *Engine) Profile() ([]RuleProfile, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	resp, err := e.callLocked('f', nil)
	if err != nil {
		return nil, err
	}
	if len(resp) != 24*len(e.design.Rules) {
		return nil, e.fail(fmt.Errorf("profile: response length %d", len(resp)))
	}
	out := make([]RuleProfile, len(e.design.Rules))
	for i := range out {
		out[i] = RuleProfile{
			Rule:     e.design.Rules[i].Name,
			Attempts: binary.LittleEndian.Uint64(resp[24*i:]),
			Commits:  binary.LittleEndian.Uint64(resp[24*i+8:]),
			Skips:    binary.LittleEndian.Uint64(resp[24*i+16:]),
		}
	}
	return out, nil
}

// Close shuts the subprocess down: a best-effort quit, then escalation to a
// process-group kill if it lingers. Always reaps the child.
func (e *Engine) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	alreadyDead := e.dead != nil
	if !alreadyDead {
		// Best-effort graceful quit; ignore errors, the kill path follows.
		if err := e.writeFrame('q', nil); err == nil {
			e.readResp()
		}
	}
	e.inPipe.Close()
	e.mu.Unlock()

	select {
	case <-e.waitDone:
	case <-time.After(5 * time.Second):
		e.kill()
	}
	reaperRemove(e.reap)
	return nil
}

// --- sim.Engine facade -----------------------------------------------------

// Design implements sim.Engine.
func (e *Engine) Design() *ast.Design { return e.design }

// Cycle implements sim.Engine. Subprocess failures panic (toolchain-bug
// territory); diag.Guard boundaries upstream convert them to errors.
func (e *Engine) Cycle() {
	if err := e.StepN(1); err != nil {
		panic(err)
	}
}

// Advance implements sim.Advancer: a whole run of cycles in one round trip.
func (e *Engine) Advance(n uint64) uint64 {
	if err := e.StepN(n); err != nil {
		panic(err)
	}
	return n
}

// Reg implements sim.Engine.
func (e *Engine) Reg(name string) bits.Bits {
	i, ok := e.regIdx[name]
	if !ok {
		panic(fmt.Sprintf("native: unknown register %q", name))
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.refreshLocked(); err != nil {
		panic(err)
	}
	return bits.New(e.design.Registers[i].Type.BitWidth(), e.mirror[i])
}

// SetReg implements sim.Engine.
func (e *Engine) SetReg(name string, v bits.Bits) {
	i, ok := e.regIdx[name]
	if !ok {
		panic(fmt.Sprintf("native: unknown register %q", name))
	}
	if err := e.Poke(i, v.Val); err != nil {
		panic(err)
	}
}

// CycleCount implements sim.Engine.
func (e *Engine) CycleCount() uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.cycles
}

// RuleFired implements sim.Engine.
func (e *Engine) RuleFired(rule string) bool {
	i, ok := e.ruleIdx[rule]
	if !ok {
		return false
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.fired[i>>3]&(1<<(i&7)) != 0
}

// Snapshot implements sim.Snapshotter.
func (e *Engine) Snapshot() sim.Snapshot {
	s, err := e.TakeSnapshot()
	if err != nil {
		panic(err)
	}
	return s
}

// Restore implements sim.Snapshotter.
func (e *Engine) Restore(s sim.Snapshot) {
	if err := e.RestoreSnapshot(s); err != nil {
		panic(err)
	}
}

// Engine builds (or reuses) the design's compiled binary and launches a
// supervised subprocess over it. A cached binary that fails to launch or
// identifies as the wrong design is quarantined and rebuilt once before
// giving up.
func (c *Cache) Engine(d *ast.Design, b *gomodel.Bindings) (*Engine, error) {
	res, err := c.Build(d, b)
	if err != nil {
		return nil, err
	}
	eng, lerr := Launch(d, res)
	if lerr == nil {
		return eng, nil
	}
	if !res.Cached {
		return nil, lerr
	}
	c.Quarantine(res.Key, lerr)
	res, err = c.Build(d, b)
	if err != nil {
		return nil, err
	}
	return Launch(d, res)
}
