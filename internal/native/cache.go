// Package native is the ahead-of-time execution tier: it compiles a design
// into a standalone simulator binary via the gomodel servo emitter and the
// Go toolchain, caches the binaries on disk keyed by content digest, and
// runs them as managed subprocesses behind the sim.Engine interface.
//
// This is the paper's compiled-simulation thesis taken to its production
// conclusion — instead of interpreting or closing over the design in
// process, the whole cycle function (rules, scheduler, activity parking,
// even the testbench) is handed to the optimizing compiler once, and every
// subsequent session of the same design reuses the binary.
//
// The package has three layers:
//
//   - Cache (this file): digest-keyed compile cache with singleflight
//     deduplication, size-bounded LRU eviction, stale-toolchain sweeping,
//     and corrupt-binary quarantine. File operations route through a
//     faultinj.FS so crash and corruption paths are testable.
//   - Engine (engine.go): the supervisor for one simulator subprocess,
//     speaking the gomodel servo protocol over stdin/stdout.
//   - The reaper (reaper.go): a registry of live subprocesses so daemon
//     shutdown can kill every child simulator, leaks included.
package native

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"time"

	"cuttlego/internal/ast"
	"cuttlego/internal/faultinj"
	"cuttlego/internal/gomodel"
)

// DefaultMaxBytes bounds the cache when CacheOptions.MaxBytes is zero:
// roomy enough for dozens of design binaries, small enough that a cache
// directory cannot grow without bound.
const DefaultMaxBytes = 1 << 30

// CacheOptions configure OpenCache.
type CacheOptions struct {
	// MaxBytes bounds the total size of cached binaries; once an insert
	// pushes the cache past it, least-recently-used entries are evicted
	// (never the entry just inserted). 0 means DefaultMaxBytes.
	MaxBytes int64
	// FS overrides the filesystem, for fault-injection tests. Nil means the
	// real one.
	FS faultinj.FS
	// GoTool overrides the path of the go tool; empty resolves "go" from
	// PATH at first compile.
	GoTool string
}

// Cache is a digest-keyed store of compiled simulator binaries. The key
// covers the emitted servo source (which embeds the design, its memory
// images, and the testbench bindings), the emitter version, and the Go
// toolchain version — so any input that could change generated behavior
// misses instead of lying. Safe for concurrent use; concurrent builds of
// the same key run exactly one compile (singleflight).
type Cache struct {
	dir string
	max int64
	fs  faultinj.FS
	gob string

	mu      sync.Mutex
	entries map[string]*entry
	flights map[string]*flight
	clock   int64 // LRU clock: bumped on every touch
	tmpSeq  int64

	stats Stats
}

// Stats counts cache activity since OpenCache (and, for Entries/Bytes, the
// current resident set).
type Stats struct {
	Hits        int64 // warm lookups served from disk
	Misses      int64 // lookups that had to compile
	Builds      int64 // go build invocations (singleflight makes this <= Misses)
	Evictions   int64 // entries removed by the size bound
	Quarantined int64 // entries set aside because their binary was corrupt
	StaleSwept  int64 // entries dropped at open for emitter/toolchain mismatch
	Entries     int   // resident entries
	Bytes       int64 // resident binary bytes
}

type entry struct {
	key  string
	size int64
	used int64 // LRU clock stamp
	meta meta
}

type flight struct {
	done chan struct{}
	res  BuildResult
	err  error
}

// meta is the per-entry metadata file (meta.json).
type meta struct {
	Key         string `json:"key"`
	Design      string `json:"design"`
	DesignHash  string `json:"design_hash"`
	Emitter     string `json:"emitter"`
	Toolchain   string `json:"toolchain"`
	SizeBytes   int64  `json:"size_bytes"`
	BinSHA256   string `json:"bin_sha256"`
	CreatedUnix int64  `json:"created_unix"`
}

// BuildResult describes one compiled binary.
type BuildResult struct {
	// Path is the binary's location inside the cache.
	Path string
	// Key is the cache key (content digest).
	Key string
	// DesignHash is the gomodel design fingerprint the binary will report
	// during its handshake.
	DesignHash uint64
	// Cached reports whether the lookup was a warm hit.
	Cached bool
	// CompileTime is the go build wall time (zero on warm hits).
	CompileTime time.Duration
}

const (
	binName  = "model"
	srcName  = "model.go"
	metaName = "meta.json"
)

// Key digests emitted servo source into a cache key. The emitter version
// and toolchain version are mixed in so either changing invalidates every
// old entry by construction.
func Key(src string) string {
	h := sha256.New()
	h.Write([]byte(gomodel.EmitterVersion))
	h.Write([]byte{0})
	h.Write([]byte(runtime.Version()))
	h.Write([]byte{0})
	h.Write([]byte(src))
	return hex.EncodeToString(h.Sum(nil))[:24]
}

// OpenCache opens (creating if needed) a compile cache rooted at dir. The
// directory is scanned: entries built by a different emitter or toolchain
// version are swept (their keys would never match again, so they are pure
// dead weight), temp debris from interrupted compiles is removed, and
// quarantined entries are left in place for postmortems.
func OpenCache(dir string, opts CacheOptions) (*Cache, error) {
	fs := opts.FS
	if fs == nil {
		fs = faultinj.OS()
	}
	max := opts.MaxBytes
	if max <= 0 {
		max = DefaultMaxBytes
	}
	if err := fs.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("native: open cache: %w", err)
	}
	c := &Cache{
		dir:     dir,
		max:     max,
		fs:      fs,
		gob:     opts.GoTool,
		entries: make(map[string]*entry),
		flights: make(map[string]*flight),
	}
	des, err := fs.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("native: open cache: %w", err)
	}
	for _, de := range des {
		name := de.Name()
		if !de.IsDir() {
			continue
		}
		if strings.Contains(name, ".tmp-") {
			fs.RemoveAll(filepath.Join(dir, name)) // interrupted compile
			continue
		}
		if strings.Contains(name, ".corrupt") {
			continue // kept for postmortems; not resident
		}
		raw, err := fs.ReadFile(filepath.Join(dir, name, metaName))
		if err != nil {
			fs.RemoveAll(filepath.Join(dir, name)) // torn entry
			continue
		}
		var m meta
		if json.Unmarshal(raw, &m) != nil || m.Key != name {
			fs.RemoveAll(filepath.Join(dir, name))
			continue
		}
		if m.Emitter != gomodel.EmitterVersion || m.Toolchain != runtime.Version() {
			fs.RemoveAll(filepath.Join(dir, name))
			c.stats.StaleSwept++
			continue
		}
		c.clock++
		c.entries[name] = &entry{key: name, size: m.SizeBytes, used: c.clock, meta: m}
	}
	return c, nil
}

// Dir returns the cache root.
func (c *Cache) Dir() string { return c.dir }

// StatsSnapshot returns current counters.
func (c *Cache) StatsSnapshot() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Entries = len(c.entries)
	for _, e := range c.entries {
		s.Bytes += e.size
	}
	return s
}

// Build returns a compiled servo binary for the design, compiling on miss.
// Concurrent calls for the same key wait on one compile. A cached binary
// whose bytes no longer match the recorded digest is quarantined (renamed
// aside) and rebuilt instead of being trusted.
func (c *Cache) Build(d *ast.Design, b *gomodel.Bindings) (BuildResult, error) {
	src, err := gomodel.EmitServo(d, b)
	if err != nil {
		return BuildResult{}, err
	}
	hash := gomodel.DesignHash(d)
	key := Key(src)
	for {
		c.mu.Lock()
		if e, ok := c.entries[key]; ok {
			c.clock++
			e.used = c.clock
			wantSHA := e.meta.BinSHA256
			c.mu.Unlock()
			path := filepath.Join(c.dir, key, binName)
			if err := c.verify(path, wantSHA); err != nil {
				c.quarantine(key, err)
				continue // rebuild below
			}
			c.mu.Lock()
			c.stats.Hits++
			c.mu.Unlock()
			return BuildResult{Path: path, Key: key, DesignHash: hash, Cached: true}, nil
		}
		if f, ok := c.flights[key]; ok {
			c.mu.Unlock()
			<-f.done
			if f.err != nil {
				return BuildResult{}, f.err
			}
			res := f.res
			res.DesignHash = hash
			return res, nil
		}
		f := &flight{done: make(chan struct{})}
		c.flights[key] = f
		c.stats.Misses++
		c.mu.Unlock()

		f.res, f.err = c.compile(d.Name, hash, key, src)
		c.mu.Lock()
		delete(c.flights, key)
		c.mu.Unlock()
		close(f.done)
		return f.res, f.err
	}
}

// verify rereads the cached binary and checks it against the digest stored
// at compile time, so torn writes and bit rot surface as quarantine events
// rather than subprocesses that fail (or lie) downstream.
func (c *Cache) verify(path, wantSHA string) error {
	raw, err := c.fs.ReadFile(path)
	if err != nil {
		return fmt.Errorf("binary unreadable: %w", err)
	}
	sum := sha256.Sum256(raw)
	if got := hex.EncodeToString(sum[:]); got != wantSHA {
		return fmt.Errorf("binary digest mismatch (have %s, recorded %s)", got[:12], wantSHA[:12])
	}
	return nil
}

// Quarantine sets a cache entry aside (renamed to <key>.corrupt-N) so the
// next Build recompiles instead of reusing bad bytes. Exposed for the
// engine layer, which quarantines entries whose binaries fail to launch or
// report the wrong design hash.
func (c *Cache) Quarantine(key string, cause error) { c.quarantine(key, cause) }

func (c *Cache) quarantine(key string, cause error) {
	c.mu.Lock()
	delete(c.entries, key)
	c.stats.Quarantined++
	n := c.stats.Quarantined
	c.mu.Unlock()
	_ = cause // recorded by callers' error paths; the rename is the action
	c.fs.Rename(filepath.Join(c.dir, key), filepath.Join(c.dir, fmt.Sprintf("%s.corrupt-%d", key, n)))
}

func (c *Cache) goTool() (string, error) {
	if c.gob != "" {
		return c.gob, nil
	}
	p, err := exec.LookPath("go")
	if err != nil {
		return "", fmt.Errorf("native: go tool not found: %w", err)
	}
	return p, nil
}

func (c *Cache) compile(design string, hash uint64, key, src string) (BuildResult, error) {
	goBin, err := c.goTool()
	if err != nil {
		return BuildResult{}, err
	}
	c.mu.Lock()
	c.tmpSeq++
	tmp := filepath.Join(c.dir, fmt.Sprintf("%s.tmp-%d-%d", key, os.Getpid(), c.tmpSeq))
	c.mu.Unlock()
	if err := c.fs.MkdirAll(tmp, 0o755); err != nil {
		return BuildResult{}, fmt.Errorf("native: compile %s: %w", design, err)
	}
	defer c.fs.RemoveAll(tmp)
	if err := c.fs.WriteFile(filepath.Join(tmp, srcName), []byte(src), 0o644); err != nil {
		return BuildResult{}, fmt.Errorf("native: compile %s: %w", design, err)
	}
	cmd := exec.Command(goBin, "build", "-o", filepath.Join(tmp, binName), filepath.Join(tmp, srcName))
	cmd.Env = append(os.Environ(), "GOFLAGS=", "GO111MODULE=off")
	start := time.Now()
	out, err := cmd.CombinedOutput()
	elapsed := time.Since(start)
	c.mu.Lock()
	c.stats.Builds++
	c.mu.Unlock()
	if err != nil {
		return BuildResult{}, fmt.Errorf("native: go build %s: %v\n%s", design, err, out)
	}
	bin, err := c.fs.ReadFile(filepath.Join(tmp, binName))
	if err != nil {
		return BuildResult{}, fmt.Errorf("native: compile %s: %w", design, err)
	}
	sum := sha256.Sum256(bin)
	m := meta{
		Key:         key,
		Design:      design,
		DesignHash:  fmt.Sprintf("%016x", hash),
		Emitter:     gomodel.EmitterVersion,
		Toolchain:   runtime.Version(),
		SizeBytes:   int64(len(bin)),
		BinSHA256:   hex.EncodeToString(sum[:]),
		CreatedUnix: time.Now().Unix(),
	}
	raw, _ := json.MarshalIndent(m, "", "  ")
	if err := c.fs.WriteFile(filepath.Join(tmp, metaName), raw, 0o644); err != nil {
		return BuildResult{}, fmt.Errorf("native: compile %s: %w", design, err)
	}
	final := filepath.Join(c.dir, key)
	if err := c.fs.Rename(tmp, final); err != nil {
		return BuildResult{}, fmt.Errorf("native: compile %s: publish: %w", design, err)
	}
	c.fs.SyncDir(c.dir)

	c.mu.Lock()
	c.clock++
	c.entries[key] = &entry{key: key, size: m.SizeBytes, used: c.clock, meta: m}
	evict := c.evictionsLocked(key)
	c.mu.Unlock()
	for _, victim := range evict {
		c.fs.RemoveAll(filepath.Join(c.dir, victim))
	}
	return BuildResult{Path: filepath.Join(final, binName), Key: key, DesignHash: hash, CompileTime: elapsed}, nil
}

// evictionsLocked applies the size bound: while the resident set exceeds
// MaxBytes, the least-recently-used entry is dropped — never keep, the one
// just inserted, so a single oversized binary still caches.
func (c *Cache) evictionsLocked(keep string) []string {
	var victims []string
	for {
		var total int64
		for _, e := range c.entries {
			total += e.size
		}
		if total <= c.max {
			return victims
		}
		var lru *entry
		for _, e := range c.entries {
			if e.key == keep {
				continue
			}
			if lru == nil || e.used < lru.used {
				lru = e
			}
		}
		if lru == nil {
			return victims // only the new entry remains; allow over-bound
		}
		delete(c.entries, lru.key)
		c.stats.Evictions++
		victims = append(victims, lru.key)
	}
}
