package native

import (
	"sync"
	"syscall"
	"time"
)

// The reaper is a package-level registry of live simulator subprocesses.
// Every Engine registers its child at spawn and deregisters it once the
// child is waited on, so a daemon shutting down (or a test asserting
// cleanliness) can kill everything the tier has spawned — including
// children orphaned by error paths that never reached Engine.Close.
//
// Children are spawned in their own process group (Setpgid), so the kill
// targets the group: a simulator that forked helpers cannot escape.

type reapEntry struct {
	pid  int
	done <-chan struct{} // closed once the child has been waited on
}

var reaper struct {
	sync.Mutex
	procs map[*reapEntry]struct{}
}

func reaperAdd(e *reapEntry) {
	reaper.Lock()
	if reaper.procs == nil {
		reaper.procs = make(map[*reapEntry]struct{})
	}
	reaper.procs[e] = struct{}{}
	reaper.Unlock()
}

func reaperRemove(e *reapEntry) {
	reaper.Lock()
	delete(reaper.procs, e)
	reaper.Unlock()
}

// Live returns the number of registered (not yet reaped) subprocesses.
func Live() int {
	reaper.Lock()
	defer reaper.Unlock()
	return len(reaper.procs)
}

// KillAll terminates every registered simulator subprocess: SIGTERM to each
// process group, a bounded wait for the children to be reaped, then SIGKILL
// for the stragglers and a final bounded wait. It returns the number of
// processes it had to signal. Engines whose children die here observe it as
// a subprocess crash (sticky error), which is the honest outcome for any
// call issued after shutdown began.
func KillAll(timeout time.Duration) int {
	reaper.Lock()
	snapshot := make([]*reapEntry, 0, len(reaper.procs))
	for e := range reaper.procs {
		snapshot = append(snapshot, e)
	}
	reaper.Unlock()
	if len(snapshot) == 0 {
		return 0
	}
	for _, e := range snapshot {
		syscall.Kill(-e.pid, syscall.SIGTERM)
	}
	if !waitReaped(snapshot, timeout) {
		for _, e := range snapshot {
			syscall.Kill(-e.pid, syscall.SIGKILL)
		}
		waitReaped(snapshot, timeout)
	}
	for _, e := range snapshot {
		reaperRemove(e)
	}
	return len(snapshot)
}

func waitReaped(entries []*reapEntry, timeout time.Duration) bool {
	deadline := time.NewTimer(timeout)
	defer deadline.Stop()
	for _, e := range entries {
		select {
		case <-e.done:
		case <-deadline.C:
			return false
		}
	}
	return true
}
