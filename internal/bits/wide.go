package bits

import (
	"fmt"
	"math/big"
	"strings"
)

// Wide is a bit vector of arbitrary width, stored little-endian in 64-bit
// limbs. It backs wide datapaths (e.g. concatenated FFT operands) that do
// not fit the 64-bit fast path. Wide values are canonical: the top limb is
// masked to the remaining width.
type Wide struct {
	width int
	limbs []uint64
}

func wideLimbs(w int) int { return (w + 63) / 64 }

// NewWide returns a w-bit vector initialized from limbs (little-endian).
// Missing limbs are zero; excess bits are masked off.
func NewWide(w int, limbs ...uint64) Wide {
	if w < 0 {
		panic("bits: negative width")
	}
	v := Wide{width: w, limbs: make([]uint64, wideLimbs(w))}
	copy(v.limbs, limbs)
	v.normalize()
	return v
}

// WideFromBits widens a Bits value into a Wide of the same width.
func WideFromBits(b Bits) Wide {
	if b.Width == 0 {
		return Wide{}
	}
	return NewWide(b.Width, b.Val)
}

// WideFromBig returns a w-bit vector holding x modulo 2^w. Negative x is
// taken two's-complement.
func WideFromBig(w int, x *big.Int) Wide {
	m := new(big.Int).Lsh(big.NewInt(1), uint(w))
	v := new(big.Int).Mod(x, m)
	out := Wide{width: w, limbs: make([]uint64, wideLimbs(w))}
	words := v.Bits()
	for i, word := range words {
		if i < len(out.limbs) {
			out.limbs[i] = uint64(word)
		}
	}
	out.normalize()
	return out
}

func (v *Wide) normalize() {
	if len(v.limbs) == 0 {
		return
	}
	rem := v.width % 64
	if rem != 0 {
		v.limbs[len(v.limbs)-1] &= Mask(rem)
	}
}

// Width returns the vector's declared width in bits.
func (v Wide) Width() int { return v.width }

// Big returns the unsigned integer value of v.
func (v Wide) Big() *big.Int {
	x := new(big.Int)
	for i := len(v.limbs) - 1; i >= 0; i-- {
		x.Lsh(x, 64)
		x.Or(x, new(big.Int).SetUint64(v.limbs[i]))
	}
	return x
}

// Bits narrows v to a Bits value; v must be at most 64 bits wide.
func (v Wide) Bits() Bits {
	if v.width > MaxWidth {
		panic("bits: Wide too wide for Bits")
	}
	if len(v.limbs) == 0 {
		return Bits{}
	}
	return Bits{Width: v.width, Val: v.limbs[0]}
}

// Equal reports whether v and o have the same width and payload.
func (v Wide) Equal(o Wide) bool {
	if v.width != o.width {
		return false
	}
	for i := range v.limbs {
		if v.limbs[i] != o.limbs[i] {
			return false
		}
	}
	return true
}

// Bit returns bit i of v.
func (v Wide) Bit(i int) uint64 {
	if i < 0 || i >= v.width {
		panic("bits: bit index out of range")
	}
	return (v.limbs[i/64] >> uint(i%64)) & 1
}

func (v Wide) checkWidth(o Wide, op string) {
	if v.width != o.width {
		panic(fmt.Sprintf("bits: width mismatch in wide %s: %d vs %d", op, v.width, o.width))
	}
}

// Add returns v + o modulo 2^Width.
func (v Wide) Add(o Wide) Wide {
	v.checkWidth(o, "add")
	out := Wide{width: v.width, limbs: make([]uint64, len(v.limbs))}
	var carry uint64
	for i := range v.limbs {
		s := v.limbs[i] + o.limbs[i]
		c1 := uint64(0)
		if s < v.limbs[i] {
			c1 = 1
		}
		s2 := s + carry
		if s2 < s {
			c1 = 1
		}
		out.limbs[i] = s2
		carry = c1
	}
	out.normalize()
	return out
}

// And returns the bitwise AND.
func (v Wide) And(o Wide) Wide { return v.bitwise(o, "and", func(a, b uint64) uint64 { return a & b }) }

// Or returns the bitwise OR.
func (v Wide) Or(o Wide) Wide { return v.bitwise(o, "or", func(a, b uint64) uint64 { return a | b }) }

// Xor returns the bitwise XOR.
func (v Wide) Xor(o Wide) Wide { return v.bitwise(o, "xor", func(a, b uint64) uint64 { return a ^ b }) }

func (v Wide) bitwise(o Wide, op string, f func(a, b uint64) uint64) Wide {
	v.checkWidth(o, op)
	out := Wide{width: v.width, limbs: make([]uint64, len(v.limbs))}
	for i := range v.limbs {
		out.limbs[i] = f(v.limbs[i], o.limbs[i])
	}
	out.normalize()
	return out
}

// Not returns the bitwise complement.
func (v Wide) Not() Wide {
	out := Wide{width: v.width, limbs: make([]uint64, len(v.limbs))}
	for i := range v.limbs {
		out.limbs[i] = ^v.limbs[i]
	}
	out.normalize()
	return out
}

// Concat returns {v, o} with v in the high bits.
func (v Wide) Concat(o Wide) Wide {
	out := Wide{width: v.width + o.width, limbs: make([]uint64, wideLimbs(v.width+o.width))}
	copy(out.limbs, o.limbs)
	for i := 0; i < v.width; i++ {
		if v.Bit(i) != 0 {
			j := o.width + i
			out.limbs[j/64] |= 1 << uint(j%64)
		}
	}
	return out
}

// Slice returns bits [lo, lo+w) of v.
func (v Wide) Slice(lo, w int) Wide {
	if lo < 0 || w < 0 || lo+w > v.width {
		panic("bits: wide slice out of range")
	}
	out := Wide{width: w, limbs: make([]uint64, wideLimbs(w))}
	for i := 0; i < w; i++ {
		if v.Bit(lo+i) != 0 {
			out.limbs[i/64] |= 1 << uint(i%64)
		}
	}
	return out
}

// AppendLE appends the vector's payload to dst as ceil(width/8)
// little-endian bytes (the snapshot wire encoding) and returns the extended
// slice. A zero-width vector appends nothing.
func (v Wide) AppendLE(dst []byte) []byte {
	nbytes := (v.width + 7) / 8
	for i := 0; i < nbytes; i++ {
		dst = append(dst, byte(v.limbs[i/8]>>uint(8*(i%8))))
	}
	return dst
}

// WideFromLE decodes a w-bit vector from ceil(w/8) little-endian payload
// bytes. It rejects payloads of the wrong length and payloads with padding
// bits set above the declared width, so every byte string decodes to at
// most one canonical value (corrupt snapshots fail loudly instead of
// silently re-canonicalizing).
func WideFromLE(w int, p []byte) (Wide, error) {
	if w < 0 {
		return Wide{}, fmt.Errorf("bits: negative width %d", w)
	}
	if want := (w + 7) / 8; len(p) != want {
		return Wide{}, fmt.Errorf("bits: width %d wants %d payload bytes, got %d", w, want, len(p))
	}
	v := Wide{width: w, limbs: make([]uint64, wideLimbs(w))}
	for i, b := range p {
		v.limbs[i/8] |= uint64(b) << uint(8*(i%8))
	}
	if rem := w % 8; rem != 0 && len(p) > 0 {
		if p[len(p)-1]>>uint(rem) != 0 {
			return Wide{}, fmt.Errorf("bits: payload has bits set above declared width %d", w)
		}
	}
	return v, nil
}

// String renders the vector as <width>'x<hex>.
func (v Wide) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d'x", v.width)
	started := false
	for i := len(v.limbs) - 1; i >= 0; i-- {
		if started {
			fmt.Fprintf(&sb, "%016x", v.limbs[i])
		} else if v.limbs[i] != 0 || i == 0 {
			fmt.Fprintf(&sb, "%x", v.limbs[i])
			started = true
		}
	}
	return sb.String()
}
