// Package bits implements the fixed-width bit-vector values that Kôika
// designs compute with. Widths 0 through 64 are represented in a single
// machine word (the fast path used by every simulator in this module);
// wider vectors are available through the Wide type.
//
// All operations are value-preserving modulo the result width: every
// constructor and operator masks its result to the declared width, so a
// Bits value is always canonical and two Bits are equal iff their widths
// and payloads are equal.
package bits

import (
	"fmt"
	"strconv"
)

// MaxWidth is the widest vector representable by Bits. Wider values use Wide.
const MaxWidth = 64

// Bits is a bit vector of up to 64 bits. The zero value is the empty
// (0-width) vector. Val is always masked to Width bits.
type Bits struct {
	Width int
	Val   uint64
}

// Mask returns the mask covering the low w bits. It panics if w is out of
// range; widths are static properties of a design, so an invalid width is a
// programming error, not an input error.
func Mask(w int) uint64 {
	if w < 0 || w > MaxWidth {
		panic("bits: width out of range: " + strconv.Itoa(w))
	}
	if w == MaxWidth {
		return ^uint64(0)
	}
	return (uint64(1) << uint(w)) - 1
}

// New returns a w-bit vector holding v masked to w bits.
func New(w int, v uint64) Bits {
	return Bits{Width: w, Val: v & Mask(w)}
}

// Zero returns the all-zeros vector of width w.
func Zero(w int) Bits { return Bits{Width: w} }

// Ones returns the all-ones vector of width w.
func Ones(w int) Bits { return Bits{Width: w, Val: Mask(w)} }

// FromBool returns a 1-bit vector: 1 if b, else 0.
func FromBool(b bool) Bits {
	if b {
		return Bits{Width: 1, Val: 1}
	}
	return Bits{Width: 1}
}

// Bool reports whether the vector is nonzero.
func (b Bits) Bool() bool { return b.Val != 0 }

// IsZero reports whether every bit is zero.
func (b Bits) IsZero() bool { return b.Val == 0 }

// Bit returns bit i (0 = least significant) as 0 or 1.
func (b Bits) Bit(i int) uint64 {
	if i < 0 || i >= b.Width {
		panic("bits: bit index out of range")
	}
	return (b.Val >> uint(i)) & 1
}

// Signed returns the vector interpreted as a two's-complement integer.
func (b Bits) Signed() int64 {
	if b.Width == 0 {
		return 0
	}
	shift := uint(64 - b.Width)
	return int64(b.Val<<shift) >> shift
}

// Uint returns the payload as an unsigned integer.
func (b Bits) Uint() uint64 { return b.Val }

// String renders the vector Verilog-style, e.g. 8'x2a.
func (b Bits) String() string {
	return fmt.Sprintf("%d'x%x", b.Width, b.Val)
}

func (b Bits) check(o Bits, op string) {
	if b.Width != o.Width {
		panic(fmt.Sprintf("bits: width mismatch in %s: %d vs %d", op, b.Width, o.Width))
	}
}

// Add returns b + o modulo 2^Width. Operand widths must match.
func (b Bits) Add(o Bits) Bits {
	b.check(o, "add")
	return New(b.Width, b.Val+o.Val)
}

// Sub returns b - o modulo 2^Width.
func (b Bits) Sub(o Bits) Bits {
	b.check(o, "sub")
	return New(b.Width, b.Val-o.Val)
}

// Mul returns the low Width bits of b * o.
func (b Bits) Mul(o Bits) Bits {
	b.check(o, "mul")
	return New(b.Width, b.Val*o.Val)
}

// And returns the bitwise AND of b and o.
func (b Bits) And(o Bits) Bits {
	b.check(o, "and")
	return Bits{Width: b.Width, Val: b.Val & o.Val}
}

// Or returns the bitwise OR of b and o.
func (b Bits) Or(o Bits) Bits {
	b.check(o, "or")
	return Bits{Width: b.Width, Val: b.Val | o.Val}
}

// Xor returns the bitwise XOR of b and o.
func (b Bits) Xor(o Bits) Bits {
	b.check(o, "xor")
	return Bits{Width: b.Width, Val: b.Val ^ o.Val}
}

// Not returns the bitwise complement of b.
func (b Bits) Not() Bits {
	return Bits{Width: b.Width, Val: ^b.Val & Mask(b.Width)}
}

// Eq returns a 1-bit vector: 1 if b == o.
func (b Bits) Eq(o Bits) Bits {
	b.check(o, "eq")
	return FromBool(b.Val == o.Val)
}

// Neq returns a 1-bit vector: 1 if b != o.
func (b Bits) Neq(o Bits) Bits {
	b.check(o, "neq")
	return FromBool(b.Val != o.Val)
}

// Ltu returns a 1-bit vector: 1 if b < o, comparing unsigned.
func (b Bits) Ltu(o Bits) Bits {
	b.check(o, "ltu")
	return FromBool(b.Val < o.Val)
}

// Geu returns a 1-bit vector: 1 if b >= o, comparing unsigned.
func (b Bits) Geu(o Bits) Bits {
	b.check(o, "geu")
	return FromBool(b.Val >= o.Val)
}

// Lts returns a 1-bit vector: 1 if b < o, comparing two's-complement.
func (b Bits) Lts(o Bits) Bits {
	b.check(o, "lts")
	return FromBool(b.Signed() < o.Signed())
}

// Ges returns a 1-bit vector: 1 if b >= o, comparing two's-complement.
func (b Bits) Ges(o Bits) Bits {
	b.check(o, "ges")
	return FromBool(b.Signed() >= o.Signed())
}

// Sll returns b shifted left by the value of o (any width). Shifts of
// Width or more produce zero.
func (b Bits) Sll(o Bits) Bits {
	sh := o.Val
	if sh >= uint64(b.Width) {
		return Zero(b.Width)
	}
	return New(b.Width, b.Val<<uint(sh))
}

// Srl returns b shifted right logically by the value of o.
func (b Bits) Srl(o Bits) Bits {
	sh := o.Val
	if sh >= uint64(b.Width) {
		return Zero(b.Width)
	}
	return Bits{Width: b.Width, Val: b.Val >> uint(sh)}
}

// Sra returns b shifted right arithmetically by the value of o.
func (b Bits) Sra(o Bits) Bits {
	sh := o.Val
	if sh >= uint64(b.Width) {
		sh = uint64(b.Width)
		if b.Width == 0 {
			return b
		}
	}
	return New(b.Width, uint64(b.Signed()>>uint(sh)))
}

// Concat returns the concatenation with b occupying the high bits and o the
// low bits (Verilog {b, o}).
func (b Bits) Concat(o Bits) Bits {
	w := b.Width + o.Width
	if w > MaxWidth {
		panic("bits: concat result exceeds 64 bits; use Wide")
	}
	return Bits{Width: w, Val: b.Val<<uint(o.Width) | o.Val}
}

// Slice returns bits [lo, lo+w) of b.
func (b Bits) Slice(lo, w int) Bits {
	if lo < 0 || w < 0 || lo+w > b.Width {
		panic(fmt.Sprintf("bits: slice [%d +%d) out of %d-bit vector", lo, w, b.Width))
	}
	return Bits{Width: w, Val: (b.Val >> uint(lo)) & Mask(w)}
}

// ZeroExtend returns b widened to w bits with zero fill. w must be >= Width.
func (b Bits) ZeroExtend(w int) Bits {
	if w < b.Width {
		panic("bits: zero-extend to narrower width")
	}
	return Bits{Width: w, Val: b.Val}
}

// SignExtend returns b widened to w bits replicating the sign bit.
func (b Bits) SignExtend(w int) Bits {
	if w < b.Width {
		panic("bits: sign-extend to narrower width")
	}
	if b.Width == 0 {
		return Zero(w)
	}
	return New(w, uint64(b.Signed()))
}

// Truncate returns the low w bits of b. w must be <= Width.
func (b Bits) Truncate(w int) Bits {
	if w > b.Width {
		panic("bits: truncate to wider width")
	}
	return Bits{Width: w, Val: b.Val & Mask(w)}
}

// SetSlice returns b with bits [lo, lo+v.Width) replaced by v.
func (b Bits) SetSlice(lo int, v Bits) Bits {
	if lo < 0 || lo+v.Width > b.Width {
		panic("bits: set-slice out of range")
	}
	m := Mask(v.Width) << uint(lo)
	return Bits{Width: b.Width, Val: b.Val&^m | v.Val<<uint(lo)}
}
