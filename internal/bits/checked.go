package bits

import "fmt"

// The operators in this package treat width agreement as an invariant, not
// an input condition: widths are static properties of a checked design, so
// every mismatch is a bug in the caller and panics (see check, Mask). The
// Try variants below are for the one caller class that cannot statically
// discharge the invariant — interpreters evaluating node trees whose widths
// were stamped by a separate checker pass. They return errors the caller
// can turn into tagged internal-error reports instead of bare panics.

// TryConcat is Concat with the width invariant checked: it returns an error
// instead of panicking when the result would exceed MaxWidth.
func (b Bits) TryConcat(o Bits) (Bits, error) {
	if b.Width+o.Width > MaxWidth {
		return Bits{}, fmt.Errorf("concat of %d and %d bits exceeds %d", b.Width, o.Width, MaxWidth)
	}
	return b.Concat(o), nil
}

// TryExtract is Slice with the bounds invariant checked: it returns an
// error instead of panicking when [lo, lo+w) falls outside the vector.
func (b Bits) TryExtract(lo, w int) (Bits, error) {
	if lo < 0 || w < 0 || lo+w > b.Width {
		return Bits{}, fmt.Errorf("extract [%d +%d) out of %d-bit vector", lo, w, b.Width)
	}
	return b.Slice(lo, w), nil
}
