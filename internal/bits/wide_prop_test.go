package bits

import (
	"math/big"
	"math/rand"
	"testing"
)

// The Wide operations are property-tested against math/big: for random
// operands, every op must agree with the corresponding big.Int computation
// reduced modulo 2^width. big.Int is the independent oracle — it shares no
// limb-handling code with Wide.

func randWide(rng *rand.Rand, w int) Wide {
	limbs := make([]uint64, wideLimbs(w))
	for i := range limbs {
		limbs[i] = rng.Uint64()
	}
	return NewWide(w, limbs...)
}

func modWidth(x *big.Int, w int) *big.Int {
	m := new(big.Int).Lsh(big.NewInt(1), uint(w))
	return new(big.Int).Mod(x, m)
}

func TestWidePropertiesVsBig(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	widths := []int{1, 3, 63, 64, 65, 127, 128, 129, 200, 512}
	binops := []struct {
		name string
		wide func(a, b Wide) Wide
		big  func(a, b *big.Int) *big.Int
	}{
		{"add", Wide.Add, func(a, b *big.Int) *big.Int { return new(big.Int).Add(a, b) }},
		{"and", Wide.And, func(a, b *big.Int) *big.Int { return new(big.Int).And(a, b) }},
		{"or", Wide.Or, func(a, b *big.Int) *big.Int { return new(big.Int).Or(a, b) }},
		{"xor", Wide.Xor, func(a, b *big.Int) *big.Int { return new(big.Int).Xor(a, b) }},
	}
	for _, w := range widths {
		for trial := 0; trial < 50; trial++ {
			a, b := randWide(rng, w), randWide(rng, w)
			ab, bb := a.Big(), b.Big()
			for _, op := range binops {
				got := op.wide(a, b).Big()
				want := modWidth(op.big(ab, bb), w)
				if got.Cmp(want) != 0 {
					t.Fatalf("w=%d %s(%v, %v) = %v, big says %v", w, op.name, a, b, got, want)
				}
			}
			// Not: ^a == 2^w - 1 - a.
			notWant := modWidth(new(big.Int).Sub(new(big.Int).Sub(new(big.Int).Lsh(big.NewInt(1), uint(w)), big.NewInt(1)), ab), w)
			if got := a.Not().Big(); got.Cmp(notWant) != 0 {
				t.Fatalf("w=%d not(%v) = %v, big says %v", w, a, got, notWant)
			}
		}
	}
}

func TestWideConcatSliceVsBig(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		wa, wb := 1+rng.Intn(200), 1+rng.Intn(200)
		a, b := randWide(rng, wa), randWide(rng, wb)
		// Concat puts a in the high bits: value = a*2^wb + b.
		cat := a.Concat(b)
		if cat.Width() != wa+wb {
			t.Fatalf("concat width = %d, want %d", cat.Width(), wa+wb)
		}
		want := new(big.Int).Add(new(big.Int).Lsh(a.Big(), uint(wb)), b.Big())
		if got := cat.Big(); got.Cmp(want) != 0 {
			t.Fatalf("concat(%v, %v) = %v, big says %v", a, b, got, want)
		}
		// Slice [lo, lo+w) = (value >> lo) mod 2^w.
		lo := rng.Intn(cat.Width())
		w := 1 + rng.Intn(cat.Width()-lo)
		sl := cat.Slice(lo, w)
		wantSl := modWidth(new(big.Int).Rsh(want, uint(lo)), w)
		if got := sl.Big(); got.Cmp(wantSl) != 0 {
			t.Fatalf("slice(%v, %d, %d) = %v, big says %v", cat, lo, w, got, wantSl)
		}
		// Round-trips: big -> Wide -> big and slicing the whole vector.
		if back := WideFromBig(cat.Width(), want); !back.Equal(cat) {
			t.Fatalf("WideFromBig round-trip: %v != %v", back, cat)
		}
		if whole := cat.Slice(0, cat.Width()); !whole.Equal(cat) {
			t.Fatalf("identity slice changed value: %v != %v", whole, cat)
		}
	}
}

func TestTryVariants(t *testing.T) {
	a, b := New(40, 1), New(40, 2)
	if _, err := a.TryConcat(b); err == nil {
		t.Error("TryConcat over MaxWidth: want error")
	}
	if v, err := New(8, 0xab).TryConcat(New(8, 0xcd)); err != nil || v != New(16, 0xabcd) {
		t.Errorf("TryConcat = %v, %v", v, err)
	}
	if _, err := a.TryExtract(33, 8); err == nil {
		t.Error("TryExtract out of range: want error")
	}
	if v, err := New(16, 0xabcd).TryExtract(8, 8); err != nil || v != New(8, 0xab) {
		t.Errorf("TryExtract = %v, %v", v, err)
	}
}
