package bits

import (
	"math/big"
	"testing"
	"testing/quick"
)

func TestMask(t *testing.T) {
	cases := []struct {
		w    int
		want uint64
	}{
		{0, 0},
		{1, 1},
		{8, 0xff},
		{32, 0xffffffff},
		{63, 0x7fffffffffffffff},
		{64, ^uint64(0)},
	}
	for _, c := range cases {
		if got := Mask(c.w); got != c.want {
			t.Errorf("Mask(%d) = %#x, want %#x", c.w, got, c.want)
		}
	}
}

func TestMaskPanics(t *testing.T) {
	for _, w := range []int{-1, 65} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Mask(%d) did not panic", w)
				}
			}()
			Mask(w)
		}()
	}
}

func TestNewMasks(t *testing.T) {
	b := New(8, 0x1ff)
	if b.Val != 0xff || b.Width != 8 {
		t.Errorf("New(8, 0x1ff) = %v", b)
	}
	if z := Zero(12); z.Val != 0 || z.Width != 12 {
		t.Errorf("Zero(12) = %v", z)
	}
	if o := Ones(5); o.Val != 0x1f {
		t.Errorf("Ones(5) = %v", o)
	}
}

func TestBool(t *testing.T) {
	if !FromBool(true).Bool() || FromBool(false).Bool() {
		t.Error("FromBool/Bool round trip broken")
	}
	if FromBool(true) != New(1, 1) || FromBool(false) != New(1, 0) {
		t.Error("FromBool canonical values wrong")
	}
}

func TestSigned(t *testing.T) {
	cases := []struct {
		b    Bits
		want int64
	}{
		{New(8, 0x7f), 127},
		{New(8, 0x80), -128},
		{New(8, 0xff), -1},
		{New(1, 1), -1},
		{New(1, 0), 0},
		{New(32, 0xffffffff), -1},
		{New(64, ^uint64(0)), -1},
		{Zero(0), 0},
	}
	for _, c := range cases {
		if got := c.b.Signed(); got != c.want {
			t.Errorf("%v.Signed() = %d, want %d", c.b, got, c.want)
		}
	}
}

func TestArith(t *testing.T) {
	a, b := New(8, 200), New(8, 100)
	if got := a.Add(b); got != New(8, 44) {
		t.Errorf("200+100 mod 256 = %v", got)
	}
	if got := b.Sub(a); got != New(8, 156) {
		t.Errorf("100-200 mod 256 = %v", got)
	}
	if got := a.Mul(b); got != New(8, (200*100)&0xff) {
		t.Errorf("200*100 mod 256 = %v", got)
	}
}

func TestCompare(t *testing.T) {
	a, b := New(8, 0x80), New(8, 0x01) // -128 vs 1 signed; 128 vs 1 unsigned
	if !a.Ltu(b).IsZero() {
		t.Error("128 <u 1 should be false")
	}
	if a.Lts(b).IsZero() {
		t.Error("-128 <s 1 should be true")
	}
	if a.Geu(b).IsZero() {
		t.Error("128 >=u 1 should be true")
	}
	if !a.Ges(b).IsZero() {
		t.Error("-128 >=s 1 should be false")
	}
	if a.Eq(a).IsZero() || !a.Neq(a).IsZero() {
		t.Error("eq/neq reflexivity broken")
	}
}

func TestShifts(t *testing.T) {
	v := New(8, 0x81)
	if got := v.Sll(New(3, 1)); got != New(8, 0x02) {
		t.Errorf("0x81 << 1 = %v", got)
	}
	if got := v.Srl(New(3, 1)); got != New(8, 0x40) {
		t.Errorf("0x81 >> 1 = %v", got)
	}
	if got := v.Sra(New(3, 1)); got != New(8, 0xc0) {
		t.Errorf("0x81 >>> 1 = %v", got)
	}
	if got := v.Sll(New(8, 200)); !got.IsZero() {
		t.Errorf("oversized shift left = %v", got)
	}
	if got := v.Sra(New(8, 200)); got != New(8, 0xff) {
		t.Errorf("oversized arithmetic shift of negative = %v", got)
	}
	if got := New(8, 0x7f).Sra(New(8, 200)); !got.IsZero() {
		t.Errorf("oversized arithmetic shift of positive = %v", got)
	}
}

func TestConcatSlice(t *testing.T) {
	hi, lo := New(4, 0xa), New(8, 0x5c)
	c := hi.Concat(lo)
	if c != New(12, 0xa5c) {
		t.Errorf("concat = %v", c)
	}
	if got := c.Slice(8, 4); got != hi {
		t.Errorf("slice hi = %v", got)
	}
	if got := c.Slice(0, 8); got != lo {
		t.Errorf("slice lo = %v", got)
	}
	if got := c.Slice(4, 4); got != New(4, 0x5) {
		t.Errorf("slice mid = %v", got)
	}
}

func TestExtendTruncate(t *testing.T) {
	v := New(8, 0x80)
	if got := v.ZeroExtend(16); got != New(16, 0x80) {
		t.Errorf("zext = %v", got)
	}
	if got := v.SignExtend(16); got != New(16, 0xff80) {
		t.Errorf("sext = %v", got)
	}
	if got := New(16, 0xff80).Truncate(8); got != v {
		t.Errorf("trunc = %v", got)
	}
	if got := Zero(0).SignExtend(4); got != Zero(4) {
		t.Errorf("sext of empty = %v", got)
	}
}

func TestSetSlice(t *testing.T) {
	v := Zero(12)
	v = v.SetSlice(4, New(4, 0xf))
	if v != New(12, 0x0f0) {
		t.Errorf("set-slice = %v", v)
	}
	v = v.SetSlice(4, New(4, 0x3))
	if v != New(12, 0x030) {
		t.Errorf("set-slice overwrite = %v", v)
	}
}

func TestStringFormat(t *testing.T) {
	if got := New(8, 0x2a).String(); got != "8'x2a" {
		t.Errorf("String() = %q", got)
	}
}

// Property: Add/Sub/logical ops agree with math/big modulo 2^w.
func TestQuickAgainstBig(t *testing.T) {
	f := func(av, bv uint64, wRaw uint8) bool {
		w := int(wRaw)%64 + 1
		a, b := New(w, av), New(w, bv)
		mod := new(big.Int).Lsh(big.NewInt(1), uint(w))
		ab := new(big.Int).SetUint64(a.Val)
		bb := new(big.Int).SetUint64(b.Val)
		sum := new(big.Int).Mod(new(big.Int).Add(ab, bb), mod)
		if a.Add(b).Val != sum.Uint64() {
			return false
		}
		diff := new(big.Int).Mod(new(big.Int).Sub(ab, bb), mod)
		if a.Sub(b).Val != diff.Uint64() {
			return false
		}
		prod := new(big.Int).Mod(new(big.Int).Mul(ab, bb), mod)
		if a.Mul(b).Val != prod.Uint64() {
			return false
		}
		return a.And(b).Val == ab.Uint64()&bb.Uint64()&Mask(w) &&
			a.Xor(b).Val == (ab.Uint64()^bb.Uint64())&Mask(w)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Not is an involution and a + ~a == all-ones.
func TestQuickNot(t *testing.T) {
	f := func(av uint64, wRaw uint8) bool {
		w := int(wRaw)%64 + 1
		a := New(w, av)
		return a.Not().Not() == a && a.Add(a.Not()) == Ones(w)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: concat then slice recovers both halves.
func TestQuickConcatSlice(t *testing.T) {
	f := func(av, bv uint64, wa, wb uint8) bool {
		a := New(int(wa)%32+1, av)
		b := New(int(wb)%32+1, bv)
		c := a.Concat(b)
		return c.Slice(b.Width, a.Width) == a && c.Slice(0, b.Width) == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: sign-extension preserves Signed().
func TestQuickSignExtend(t *testing.T) {
	f := func(av uint64, wRaw, extRaw uint8) bool {
		w := int(wRaw)%32 + 1
		ext := w + int(extRaw)%(64-w+1)
		a := New(w, av)
		return a.SignExtend(ext).Signed() == a.Signed()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
