package bits

import (
	"math/big"
	"testing"
	"testing/quick"
)

func TestWideBasics(t *testing.T) {
	v := NewWide(100, 0xdeadbeef, 0x1)
	if v.Width() != 100 {
		t.Fatalf("width = %d", v.Width())
	}
	want := new(big.Int).Lsh(big.NewInt(1), 64)
	want.Or(want, big.NewInt(0xdeadbeef))
	if v.Big().Cmp(want) != 0 {
		t.Errorf("Big() = %v, want %v", v.Big(), want)
	}
}

func TestWideMasksTopLimb(t *testing.T) {
	v := NewWide(65, ^uint64(0), ^uint64(0))
	if v.Bit(64) != 1 {
		t.Error("bit 64 should be set")
	}
	two65 := new(big.Int).Lsh(big.NewInt(1), 65)
	two65.Sub(two65, big.NewInt(1))
	if v.Big().Cmp(two65) != 0 {
		t.Errorf("65-bit all ones = %v", v.Big())
	}
}

func TestWideBitsRoundTrip(t *testing.T) {
	b := New(48, 0xabcdef123456)
	if got := WideFromBits(b).Bits(); got != b {
		t.Errorf("round trip = %v", got)
	}
}

func TestWideConcatSlice(t *testing.T) {
	a := NewWide(70, 0x1234, 0x3f)
	b := NewWide(33, 0x1ffffffff)
	c := a.Concat(b)
	if c.Width() != 103 {
		t.Fatalf("concat width = %d", c.Width())
	}
	if !c.Slice(33, 70).Equal(a) || !c.Slice(0, 33).Equal(b) {
		t.Error("concat/slice round trip broken")
	}
}

func TestWideNotInvolution(t *testing.T) {
	v := NewWide(129, 5, 7, 1)
	if !v.Not().Not().Equal(v) {
		t.Error("double negation broken")
	}
}

func TestWideString(t *testing.T) {
	if got := NewWide(72, 0xff, 0x1).String(); got != "72'x100000000000000ff" {
		t.Errorf("String() = %q", got)
	}
	if got := NewWide(8, 0x2a).String(); got != "8'x2a" {
		t.Errorf("String() = %q", got)
	}
}

// Property: wide Add agrees with math/big.
func TestQuickWideAdd(t *testing.T) {
	f := func(a0, a1, b0, b1 uint64, wRaw uint8) bool {
		w := int(wRaw)%128 + 1
		a := NewWide(w, a0, a1)
		b := NewWide(w, b0, b1)
		mod := new(big.Int).Lsh(big.NewInt(1), uint(w))
		want := new(big.Int).Mod(new(big.Int).Add(a.Big(), b.Big()), mod)
		return a.Add(b).Big().Cmp(want) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: bitwise ops agree with math/big.
func TestQuickWideBitwise(t *testing.T) {
	f := func(a0, a1, b0, b1 uint64, wRaw uint8) bool {
		w := int(wRaw)%128 + 1
		a := NewWide(w, a0, a1)
		b := NewWide(w, b0, b1)
		and := new(big.Int).And(a.Big(), b.Big())
		or := new(big.Int).Or(a.Big(), b.Big())
		xor := new(big.Int).Xor(a.Big(), b.Big())
		return a.And(b).Big().Cmp(and) == 0 &&
			a.Or(b).Big().Cmp(or) == 0 &&
			a.Xor(b).Big().Cmp(xor) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: WideFromBig round-trips through Big.
func TestQuickWideFromBig(t *testing.T) {
	f := func(a0, a1 uint64, wRaw uint8) bool {
		w := int(wRaw)%128 + 1
		x := NewWide(w, a0, a1).Big()
		return WideFromBig(w, x).Big().Cmp(x) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
