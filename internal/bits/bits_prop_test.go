package bits

import (
	"math/big"
	"math/rand"
	"testing"
)

// Property tests for the single-word Bits type against math/big as the
// reference semantics: every operation, over every width 0..64, with the
// edge cases the simulators lean on — shift counts exactly at and above
// the operand width, the degenerate 0-width vector, arithmetic right
// shifts of negative 64-bit values, and slice updates touching the top
// bit.

// bigOf lifts a Bits value to an unsigned big.Int.
func bigOf(b Bits) *big.Int { return new(big.Int).SetUint64(b.Val) }

// bigMask truncates x to w bits in place and returns it.
func bigMask(x *big.Int, w int) *big.Int {
	m := new(big.Int).Lsh(big.NewInt(1), uint(w))
	m.Sub(m, big.NewInt(1))
	return x.And(x, m)
}

// bigSigned reads b as a two's-complement signed big.Int.
func bigSigned(b Bits) *big.Int {
	x := bigOf(b)
	if b.Width > 0 && b.Val>>(uint(b.Width)-1)&1 == 1 {
		x.Sub(x, new(big.Int).Lsh(big.NewInt(1), uint(b.Width)))
	}
	return x
}

// wantBits converts a big.Int (already reduced or not) to the canonical
// w-bit vector, reducing modulo 2^w and fixing up negative values.
func wantBits(x *big.Int, w int) Bits {
	m := new(big.Int).Lsh(big.NewInt(1), uint(w))
	x = new(big.Int).Mod(x, m)
	if x.Sign() < 0 {
		x.Add(x, m)
	}
	return Bits{Width: w, Val: x.Uint64()}
}

// testWidths covers both boundaries and a spread of interior widths.
var testWidths = []int{0, 1, 2, 3, 7, 8, 15, 16, 31, 32, 33, 47, 63, 64}

func randBits(r *rand.Rand, w int) Bits {
	switch r.Intn(4) {
	case 0:
		return Zero(w)
	case 1:
		return Ones(w)
	default:
		return New(w, r.Uint64())
	}
}

func TestPropArith(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, w := range testWidths {
		for i := 0; i < 200; i++ {
			a, b := randBits(r, w), randBits(r, w)
			check := func(op string, got Bits, ref *big.Int) {
				t.Helper()
				want := wantBits(ref, w)
				if got != want {
					t.Fatalf("w=%d %s(%v, %v) = %v, big says %v", w, op, a, b, got, want)
				}
			}
			check("add", a.Add(b), new(big.Int).Add(bigOf(a), bigOf(b)))
			check("sub", a.Sub(b), new(big.Int).Sub(bigOf(a), bigOf(b)))
			check("mul", a.Mul(b), new(big.Int).Mul(bigOf(a), bigOf(b)))
			check("and", a.And(b), new(big.Int).And(bigOf(a), bigOf(b)))
			check("or", a.Or(b), new(big.Int).Or(bigOf(a), bigOf(b)))
			check("xor", a.Xor(b), new(big.Int).Xor(bigOf(a), bigOf(b)))
			check("not", a.Not(), bigMask(new(big.Int).Not(bigOf(a)), w))
		}
	}
}

func TestPropCompare(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for _, w := range testWidths {
		for i := 0; i < 200; i++ {
			a, b := randBits(r, w), randBits(r, w)
			u := bigOf(a).Cmp(bigOf(b))
			s := bigSigned(a).Cmp(bigSigned(b))
			cases := []struct {
				op   string
				got  Bits
				want bool
			}{
				{"eq", a.Eq(b), u == 0},
				{"neq", a.Neq(b), u != 0},
				{"ltu", a.Ltu(b), u < 0},
				{"geu", a.Geu(b), u >= 0},
				{"lts", a.Lts(b), s < 0},
				{"ges", a.Ges(b), s >= 0},
			}
			for _, c := range cases {
				if c.got != FromBool(c.want) {
					t.Fatalf("w=%d %s(%v, %v) = %v, big says %v", w, c.op, a, b, c.got, c.want)
				}
			}
		}
	}
}

// TestPropShifts hits every shift count from 0 past the operand width,
// plus huge counts, for all three shift operators. The reference: logical
// shifts in 2^w arithmetic, arithmetic right shift over the signed value.
func TestPropShifts(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for _, w := range testWidths {
		for i := 0; i < 60; i++ {
			a := randBits(r, w)
			counts := []uint64{0, 1, uint64(max(w-1, 0)), uint64(w), uint64(w + 1), 63, 64, 65, 1 << 40}
			for _, sh := range counts {
				shv := New(64, sh)
				gotL := a.Sll(shv)
				wantL := wantBits(new(big.Int).Lsh(bigOf(a), uint(min(sh, 1<<20))), w)
				if gotL != wantL {
					t.Fatalf("w=%d sll(%v, %d) = %v, big says %v", w, a, sh, gotL, wantL)
				}
				gotR := a.Srl(shv)
				wantR := wantBits(new(big.Int).Rsh(bigOf(a), uint(min(sh, 1<<20))), w)
				if gotR != wantR {
					t.Fatalf("w=%d srl(%v, %d) = %v, big says %v", w, a, sh, gotR, wantR)
				}
				gotA := a.Sra(shv)
				wantA := wantBits(new(big.Int).Rsh(bigSigned(a), uint(min(sh, 1<<20))), w)
				if gotA != wantA {
					t.Fatalf("w=%d sra(%v, %d) = %v, big says %v", w, a, sh, gotA, wantA)
				}
			}
		}
	}
}

// TestPropSraNegative64 pins the hardest shift case: arithmetic right
// shifts of negative full-width values, where the sign fill must reach
// down from bit 63.
func TestPropSraNegative64(t *testing.T) {
	vals := []uint64{1 << 63, ^uint64(0), 0x8000000000000001, 0xdeadbeef00000000 | 1<<63}
	for _, v := range vals {
		a := New(64, v)
		for sh := 0; sh <= 66; sh++ {
			got := a.Sra(New(64, uint64(sh)))
			want := wantBits(new(big.Int).Rsh(bigSigned(a), uint(sh)), 64)
			if got != want {
				t.Fatalf("sra(%#x, %d) = %v, big says %v", v, sh, got, want)
			}
		}
	}
}

func TestPropSliceConcatExtend(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for _, w := range testWidths {
		for i := 0; i < 100; i++ {
			a := randBits(r, w)
			// Every (lo, sw) slice, reference: shift right then mask.
			lo := r.Intn(w + 1)
			sw := r.Intn(w - lo + 1)
			got := a.Slice(lo, sw)
			want := wantBits(new(big.Int).Rsh(bigOf(a), uint(lo)), sw)
			if got != want {
				t.Fatalf("w=%d slice(%v, %d, %d) = %v, big says %v", w, a, lo, sw, got, want)
			}
			// Concat with a partner that keeps the result <= 64 bits.
			bw := r.Intn(MaxWidth - w + 1)
			b := randBits(r, bw)
			gotC := a.Concat(b)
			refC := new(big.Int).Lsh(bigOf(a), uint(bw))
			refC.Or(refC, bigOf(b))
			if wantC := wantBits(refC, w+bw); gotC != wantC {
				t.Fatalf("concat(%v, %v) = %v, big says %v", a, b, gotC, wantC)
			}
			// Extensions to every wider width.
			ew := w + r.Intn(MaxWidth-w+1)
			if gotZ := a.ZeroExtend(ew); gotZ != wantBits(bigOf(a), ew) {
				t.Fatalf("zext(%v, %d) = %v", a, ew, gotZ)
			}
			if gotS := a.SignExtend(ew); gotS != wantBits(bigSigned(a), ew) {
				t.Fatalf("sext(%v, %d) = %v, big says %v", a, ew, gotS, wantBits(bigSigned(a), ew))
			}
			if gotT := a.Truncate(lo); gotT != wantBits(bigOf(a), lo) {
				t.Fatalf("truncate(%v, %d) = %v", a, lo, gotT)
			}
		}
	}
}

// TestPropSetSlice exercises slice update across the full position range,
// in particular writes whose top bit lands exactly on bit Width-1.
func TestPropSetSlice(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for _, w := range testWidths {
		for i := 0; i < 100; i++ {
			a := randBits(r, w)
			lo := r.Intn(w + 1)
			vw := r.Intn(w - lo + 1)
			if i%4 == 0 && w > 0 {
				// Force the update to end at the top bit.
				vw = 1 + r.Intn(w)
				lo = w - vw
			}
			v := randBits(r, vw)
			got := a.SetSlice(lo, v)
			hole := new(big.Int).Lsh(bigMask(big.NewInt(-1), vw), uint(lo))
			ref := new(big.Int).AndNot(bigOf(a), hole)
			ref.Or(ref, new(big.Int).Lsh(bigOf(v), uint(lo)))
			if want := wantBits(ref, w); got != want {
				t.Fatalf("w=%d setslice(%v, %d, %v) = %v, big says %v", w, a, lo, v, got, want)
			}
		}
	}
}

// TestPropZeroWidthEverywhere routes the 0-width vector through every
// operation that accepts it; all of them must return canonical values and
// none may panic.
func TestPropZeroWidthEverywhere(t *testing.T) {
	z := Zero(0)
	for _, got := range []Bits{
		z.Add(z), z.Sub(z), z.Mul(z), z.And(z), z.Or(z), z.Xor(z), z.Not(),
		z.Sll(New(8, 3)), z.Srl(New(8, 3)), z.Sra(New(8, 3)),
		z.Slice(0, 0), z.Truncate(0), z.SetSlice(0, z), z.Concat(z),
	} {
		if got != z {
			t.Fatalf("0-width op returned %v, want %v", got, z)
		}
	}
	if got := z.Eq(z); got != FromBool(true) {
		t.Fatalf("0-width eq = %v", got)
	}
	if got := z.Ltu(z); got != FromBool(false) {
		t.Fatalf("0-width ltu = %v", got)
	}
	if got := z.Lts(z); got != FromBool(false) {
		t.Fatalf("0-width lts = %v", got)
	}
	if got := z.ZeroExtend(8); got != Zero(8) {
		t.Fatalf("0-width zext = %v", got)
	}
	if got := z.SignExtend(8); got != Zero(8) {
		t.Fatalf("0-width sext = %v", got)
	}
	if got := New(8, 0xa5).Concat(z); got != New(8, 0xa5) {
		t.Fatalf("concat with unit = %v", got)
	}
	if got := New(8, 0xa5).SetSlice(8, z); got != New(8, 0xa5) {
		t.Fatalf("top set-slice of unit = %v", got)
	}
}
