package riscv

import (
	"fmt"
	"strconv"
	"strings"
)

// Assemble translates assembly text into instruction words (two passes:
// label collection, then encoding). Supported syntax:
//
//	label:                      ; labels
//	add  rd, rs1, rs2           ; R-type ALU ops
//	addi rd, rs1, imm           ; I-type ALU ops (and slli/srli/srai)
//	lw   rd, imm(rs1)           ; loads (words only)
//	sw   rs2, imm(rs1)          ; stores (words only)
//	beq  rs1, rs2, label|imm    ; branches
//	jal  rd, label|imm          ; jumps
//	jalr rd, imm(rs1)
//	lui/auipc rd, imm
//	nop / mv / li / j / ret     ; common pseudo-instructions
//	.word 0x...                 ; literal words
//	# ... / ; ...               ; comments
//
// Registers are written x0..x31 or by ABI name (zero, ra, sp, a0…).
func Assemble(src string) ([]uint32, error) {
	lines := strings.Split(src, "\n")
	labels := make(map[string]int32)
	var stmts []stmt

	pc := int32(0)
	for lineno, raw := range lines {
		text := stripComment(raw)
		for {
			text = strings.TrimSpace(text)
			i := strings.IndexByte(text, ':')
			if i < 0 {
				break
			}
			label := strings.TrimSpace(text[:i])
			if !isIdent(label) {
				return nil, fmt.Errorf("line %d: bad label %q", lineno+1, label)
			}
			if _, dup := labels[label]; dup {
				return nil, fmt.Errorf("line %d: duplicate label %q", lineno+1, label)
			}
			labels[label] = pc
			text = text[i+1:]
		}
		if text == "" {
			continue
		}
		stmts = append(stmts, stmt{text: text, line: lineno + 1, pc: pc})
		pc += 4
	}

	out := make([]uint32, 0, len(stmts))
	for _, st := range stmts {
		word, err := encodeStmt(st, labels)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", st.line, err)
		}
		out = append(out, word)
	}
	return out, nil
}

// MustAssemble panics on assembly errors; for statically known programs.
func MustAssemble(src string) []uint32 {
	words, err := Assemble(src)
	if err != nil {
		panic(err)
	}
	return words
}

type stmt struct {
	text string
	line int
	pc   int32
}

func stripComment(s string) string {
	if i := strings.IndexAny(s, "#;"); i >= 0 {
		return s[:i]
	}
	return s
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		ok := r == '_' || r == '.' || r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || i > 0 && r >= '0' && r <= '9'
		if !ok {
			return false
		}
	}
	return true
}

var abiNames = func() map[string]uint32 {
	m := map[string]uint32{
		"zero": 0, "ra": 1, "sp": 2, "gp": 3, "tp": 4,
		"t0": 5, "t1": 6, "t2": 7, "s0": 8, "fp": 8, "s1": 9,
	}
	for i := 0; i <= 7; i++ {
		m[fmt.Sprintf("a%d", i)] = uint32(10 + i)
	}
	for i := 2; i <= 11; i++ {
		m[fmt.Sprintf("s%d", i)] = uint32(16 + i)
	}
	for i := 3; i <= 6; i++ {
		m[fmt.Sprintf("t%d", i)] = uint32(25 + i)
	}
	return m
}()

func parseReg(s string) (uint32, error) {
	s = strings.TrimSpace(s)
	if strings.HasPrefix(s, "x") {
		n, err := strconv.Atoi(s[1:])
		if err == nil && n >= 0 && n < 32 {
			return uint32(n), nil
		}
	}
	if n, ok := abiNames[s]; ok {
		return n, nil
	}
	return 0, fmt.Errorf("bad register %q", s)
}

func parseImm(s string, labels map[string]int32, pcRel int32) (int32, error) {
	s = strings.TrimSpace(s)
	if target, ok := labels[s]; ok {
		return target - pcRel, nil
	}
	v, err := strconv.ParseInt(s, 0, 64)
	if err != nil {
		return 0, fmt.Errorf("bad immediate %q", s)
	}
	return int32(v), nil
}

// parseMem parses "imm(rs)".
func parseMem(s string) (int32, uint32, error) {
	s = strings.TrimSpace(s)
	open := strings.IndexByte(s, '(')
	if open < 0 || !strings.HasSuffix(s, ")") {
		return 0, 0, fmt.Errorf("bad memory operand %q", s)
	}
	immStr := strings.TrimSpace(s[:open])
	if immStr == "" {
		immStr = "0"
	}
	imm, err := strconv.ParseInt(immStr, 0, 64)
	if err != nil {
		return 0, 0, fmt.Errorf("bad offset %q", immStr)
	}
	reg, err := parseReg(s[open+1 : len(s)-1])
	return int32(imm), reg, err
}

var rOps = map[string][2]uint32{ // funct7, funct3
	"add": {0, F3AddSub}, "sub": {0x20, F3AddSub}, "sll": {0, F3Sll},
	"slt": {0, F3Slt}, "sltu": {0, F3Sltu}, "xor": {0, F3Xor},
	"srl": {0, F3SrlSra}, "sra": {0x20, F3SrlSra}, "or": {0, F3Or}, "and": {0, F3And},
}

var iOps = map[string]uint32{
	"addi": F3AddSub, "slti": F3Slt, "sltiu": F3Sltu,
	"xori": F3Xor, "ori": F3Or, "andi": F3And,
}

var branchOps = map[string]uint32{
	"beq": F3Beq, "bne": F3Bne, "blt": F3Blt, "bge": F3Bge, "bltu": F3Bltu, "bgeu": F3Bgeu,
}

func encodeStmt(st stmt, labels map[string]int32) (uint32, error) {
	fields := strings.Fields(st.text)
	mnemonic := strings.ToLower(fields[0])
	rest := strings.TrimSpace(st.text[len(fields[0]):])
	var args []string
	if rest != "" {
		args = strings.Split(rest, ",")
		for i := range args {
			args[i] = strings.TrimSpace(args[i])
		}
	}
	need := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("%s takes %d operands, got %d", mnemonic, n, len(args))
		}
		return nil
	}

	// Pseudo-instructions first.
	switch mnemonic {
	case "nop":
		return encI(0, 0, F3AddSub, 0, OpImm), nil
	case "mv":
		if err := need(2); err != nil {
			return 0, err
		}
		rd, err := parseReg(args[0])
		if err != nil {
			return 0, err
		}
		rs, err := parseReg(args[1])
		if err != nil {
			return 0, err
		}
		return encI(0, rs, F3AddSub, rd, OpImm), nil
	case "li":
		if err := need(2); err != nil {
			return 0, err
		}
		rd, err := parseReg(args[0])
		if err != nil {
			return 0, err
		}
		imm, err := parseImm(args[1], nil, 0)
		if err != nil {
			return 0, err
		}
		if imm < -2048 || imm > 2047 {
			return 0, fmt.Errorf("li immediate %d out of addi range (use lui+addi)", imm)
		}
		return encI(imm, 0, F3AddSub, rd, OpImm), nil
	case "j":
		if err := need(1); err != nil {
			return 0, err
		}
		imm, err := parseImm(args[0], labels, st.pc)
		if err != nil {
			return 0, err
		}
		return encJ(imm, 0, OpJal), nil
	case "ret":
		return encI(0, 1, 0, 0, OpJalr), nil
	case ".word":
		if err := need(1); err != nil {
			return 0, err
		}
		v, err := strconv.ParseUint(args[0], 0, 32)
		if err != nil {
			return 0, err
		}
		return uint32(v), nil
	}

	if f, ok := rOps[mnemonic]; ok {
		if err := need(3); err != nil {
			return 0, err
		}
		rd, err1 := parseReg(args[0])
		rs1, err2 := parseReg(args[1])
		rs2, err3 := parseReg(args[2])
		if err := firstErr(err1, err2, err3); err != nil {
			return 0, err
		}
		return encR(f[0], rs2, rs1, f[1], rd, OpReg), nil
	}
	if f3, ok := iOps[mnemonic]; ok {
		if err := need(3); err != nil {
			return 0, err
		}
		rd, err1 := parseReg(args[0])
		rs1, err2 := parseReg(args[1])
		imm, err3 := parseImm(args[2], nil, 0)
		if err := firstErr(err1, err2, err3); err != nil {
			return 0, err
		}
		return encI(imm, rs1, f3, rd, OpImm), nil
	}
	if f3, ok := branchOps[mnemonic]; ok {
		if err := need(3); err != nil {
			return 0, err
		}
		rs1, err1 := parseReg(args[0])
		rs2, err2 := parseReg(args[1])
		imm, err3 := parseImm(args[2], labels, st.pc)
		if err := firstErr(err1, err2, err3); err != nil {
			return 0, err
		}
		return encB(imm, rs2, rs1, f3, OpBranch), nil
	}

	switch mnemonic {
	case "slli", "srli", "srai":
		if err := need(3); err != nil {
			return 0, err
		}
		rd, err1 := parseReg(args[0])
		rs1, err2 := parseReg(args[1])
		sh, err3 := parseImm(args[2], nil, 0)
		if err := firstErr(err1, err2, err3); err != nil {
			return 0, err
		}
		if sh < 0 || sh > 31 {
			return 0, fmt.Errorf("shift amount %d out of range", sh)
		}
		f3 := uint32(F3Sll)
		f7 := uint32(0)
		if mnemonic != "slli" {
			f3 = F3SrlSra
		}
		if mnemonic == "srai" {
			f7 = 0x20
		}
		return encR(f7, uint32(sh), rs1, f3, rd, OpImm), nil
	case "lui", "auipc":
		if err := need(2); err != nil {
			return 0, err
		}
		rd, err := parseReg(args[0])
		if err != nil {
			return 0, err
		}
		imm, err := parseImm(args[1], nil, 0)
		if err != nil {
			return 0, err
		}
		op := uint32(OpLui)
		if mnemonic == "auipc" {
			op = OpAuipc
		}
		return encU(imm<<12, rd, op), nil
	case "jal":
		if err := need(2); err != nil {
			return 0, err
		}
		rd, err := parseReg(args[0])
		if err != nil {
			return 0, err
		}
		imm, err := parseImm(args[1], labels, st.pc)
		if err != nil {
			return 0, err
		}
		return encJ(imm, rd, OpJal), nil
	case "jalr":
		if err := need(2); err != nil {
			return 0, err
		}
		rd, err := parseReg(args[0])
		if err != nil {
			return 0, err
		}
		imm, rs1, err := parseMem(args[1])
		if err != nil {
			return 0, err
		}
		return encI(imm, rs1, 0, rd, OpJalr), nil
	case "lw":
		if err := need(2); err != nil {
			return 0, err
		}
		rd, err := parseReg(args[0])
		if err != nil {
			return 0, err
		}
		imm, rs1, err := parseMem(args[1])
		if err != nil {
			return 0, err
		}
		return encI(imm, rs1, 0b010, rd, OpLoad), nil
	case "sw":
		if err := need(2); err != nil {
			return 0, err
		}
		rs2, err := parseReg(args[0])
		if err != nil {
			return 0, err
		}
		imm, rs1, err := parseMem(args[1])
		if err != nil {
			return 0, err
		}
		return encS(imm, rs2, rs1, 0b010, OpStore), nil
	}
	return 0, fmt.Errorf("unknown mnemonic %q", mnemonic)
}

func firstErr(errs ...error) error {
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}
