package riscv

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestImmediateRoundTrips(t *testing.T) {
	// Property: encode/extract round-trips for each immediate format.
	checkI := func(raw int16) bool {
		imm := int32(raw) >> 4 // 12-bit signed
		return ImmI(encI(imm, 3, 2, 1, OpImm)) == imm
	}
	checkS := func(raw int16) bool {
		imm := int32(raw) >> 4
		return ImmS(encS(imm, 3, 2, 2, OpStore)) == imm
	}
	checkB := func(raw int16) bool {
		imm := (int32(raw) >> 3) &^ 1 // 13-bit signed, even
		return ImmB(encB(imm, 3, 2, F3Beq, OpBranch)) == imm
	}
	checkJ := func(raw int32) bool {
		imm := (raw >> 11) &^ 1 // 21-bit signed, even
		return ImmJ(encJ(imm, 1, OpJal)) == imm
	}
	for name, f := range map[string]any{"I": checkI, "S": checkS, "B": checkB, "J": checkJ} {
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("%s-format: %v", name, err)
		}
	}
}

func TestAssembleBasics(t *testing.T) {
	words, err := Assemble(`
start:  addi x1, x0, 5
        add  x2, x1, x1
        beq  x2, x0, start
        nop
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(words) != 4 {
		t.Fatalf("got %d words", len(words))
	}
	if words[0] != encI(5, 0, F3AddSub, 1, OpImm) {
		t.Errorf("addi encoded %08x", words[0])
	}
	if words[1] != encR(0, 1, 1, F3AddSub, 2, OpReg) {
		t.Errorf("add encoded %08x", words[1])
	}
	if ImmB(words[2]) != -8 {
		t.Errorf("branch offset = %d, want -8", ImmB(words[2]))
	}
	if words[3] != 0x00000013 {
		t.Errorf("nop encoded %08x", words[3])
	}
}

func TestAssembleMemAndJumps(t *testing.T) {
	words, err := Assemble(`
        lw   a0, 8(sp)
        sw   a0, -4(s0)
        jal  ra, target
        jalr x0, 0(ra)
target: lui  t0, 0x40000
`)
	if err != nil {
		t.Fatal(err)
	}
	if Rd(words[0]) != 10 || ImmI(words[0]) != 8 || Rs1(words[0]) != 2 {
		t.Errorf("lw fields wrong: %s", Disassemble(words[0]))
	}
	if Rs2(words[1]) != 10 || ImmS(words[1]) != -4 || Rs1(words[1]) != 8 {
		t.Errorf("sw fields wrong: %s", Disassemble(words[1]))
	}
	if ImmJ(words[2]) != 8 {
		t.Errorf("jal offset = %d", ImmJ(words[2]))
	}
	if uint32(ImmU(words[4]))>>12 != 0x40000 {
		t.Errorf("lui imm = %x", ImmU(words[4]))
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []string{
		"bogus x1, x2",
		"addi x1, x2",
		"addi x99, x0, 1",
		"beq x1, x2, missing_label",
		"lw x1, nope",
		"dup: nop\ndup: nop",
		"li x1, 99999",
	}
	for _, src := range cases {
		if _, err := Assemble(src); err == nil {
			t.Errorf("Assemble(%q) succeeded, want error", src)
		}
	}
}

func TestDisassembleRoundTrip(t *testing.T) {
	srcs := []string{
		"addi x1, x2, -7", "add x3, x4, x5", "sub x3, x4, x5",
		"lw x1, 12(x2)", "sw x6, 0(x7)", "beq x1, x2, 16",
		"jal x1, 2048", "lui x5, 0x12345", "srai x1, x2, 3",
	}
	for _, src := range srcs {
		words := MustAssemble(src)
		dis := Disassemble(words[0])
		re, err := Assemble(dis)
		if err != nil {
			t.Errorf("disassembly %q of %q does not re-assemble: %v", dis, src, err)
			continue
		}
		if re[0] != words[0] {
			t.Errorf("%q -> %08x -> %q -> %08x", src, words[0], dis, re[0])
		}
	}
}

func TestMachineArithmetic(t *testing.T) {
	mem := NewMemory()
	mem.LoadWords(0, MustAssemble(`
        li   x1, 100
        li   x2, 7
        sub  x3, x1, x2
        slt  x4, x2, x1
        sltu x5, x1, x2
        sll  x6, x2, x4
        sra  x7, x1, x2
        xor  x8, x1, x2
halt:   j halt
`))
	m := NewMachine(mem)
	if _, err := m.Run(100); err != nil {
		t.Fatal(err)
	}
	want := map[int]uint32{1: 100, 2: 7, 3: 93, 4: 1, 5: 0, 6: 14, 7: 0, 8: 99}
	for r, v := range want {
		if m.Regs[r] != v {
			t.Errorf("x%d = %d, want %d", r, m.Regs[r], v)
		}
	}
	if !m.Halted {
		t.Error("machine did not halt on spin loop")
	}
}

func TestMachineMemoryAndTohost(t *testing.T) {
	mem := NewMemory()
	mem.LoadWords(0, MustAssemble(`
        li   x1, 42
        sw   x1, 128(x0)
        lw   x2, 128(x0)
        lui  x3, 0x40000
        sw   x2, 0(x3)
`))
	m := NewMachine(mem)
	halted, err := m.Run(100)
	if err != nil {
		t.Fatal(err)
	}
	if !halted || m.ToHost != 42 {
		t.Errorf("halted=%v tohost=%d", halted, m.ToHost)
	}
}

func TestX0IsHardwiredZero(t *testing.T) {
	mem := NewMemory()
	mem.LoadWords(0, MustAssemble(`
        addi x0, x0, 5
        addi x1, x0, 1
halt:   j halt
`))
	m := NewMachine(mem)
	if _, err := m.Run(10); err != nil {
		t.Fatal(err)
	}
	if m.Regs[0] != 0 || m.Regs[1] != 1 {
		t.Errorf("x0=%d x1=%d", m.Regs[0], m.Regs[1])
	}
}

func TestMachineRejectsUnsupported(t *testing.T) {
	mem := NewMemory()
	mem.LoadWords(0, []uint32{0x00000073}) // ecall
	m := NewMachine(mem)
	if err := m.Step(); err == nil || !strings.Contains(err.Error(), "unsupported") {
		t.Errorf("err = %v", err)
	}
}

func TestMemoryClone(t *testing.T) {
	m := NewMemory()
	m.WriteWord(4, 9)
	c := m.Clone()
	c.WriteWord(4, 10)
	if m.ReadWord(4) != 9 || c.ReadWord(4) != 10 {
		t.Error("clone is not independent")
	}
}
