// Package riscv provides the RV32I substrate the processor designs run on:
// instruction encoding and decoding, a small two-pass assembler, a
// disassembler, and a reference ISA simulator used as the golden model when
// validating the pipelined cores. System instructions, interrupts, and
// exceptions are out of scope, matching the paper's evaluation subset.
package riscv

import "fmt"

// Opcode constants (the 7-bit major opcodes of RV32I).
const (
	OpLui    = 0b0110111
	OpAuipc  = 0b0010111
	OpJal    = 0b1101111
	OpJalr   = 0b1100111
	OpBranch = 0b1100011
	OpLoad   = 0b0000011
	OpStore  = 0b0100011
	OpImm    = 0b0010011
	OpReg    = 0b0110011
)

// Funct3 values for branches.
const (
	F3Beq  = 0b000
	F3Bne  = 0b001
	F3Blt  = 0b100
	F3Bge  = 0b101
	F3Bltu = 0b110
	F3Bgeu = 0b111
)

// Funct3 values for ALU operations.
const (
	F3AddSub = 0b000
	F3Sll    = 0b001
	F3Slt    = 0b010
	F3Sltu   = 0b011
	F3Xor    = 0b100
	F3SrlSra = 0b101
	F3Or     = 0b110
	F3And    = 0b111
)

// Instruction field accessors.

// OpcodeOf extracts the major opcode.
func OpcodeOf(inst uint32) uint32 { return inst & 0x7f }

// Rd extracts the destination register.
func Rd(inst uint32) uint32 { return inst >> 7 & 0x1f }

// Rs1 extracts source register 1.
func Rs1(inst uint32) uint32 { return inst >> 15 & 0x1f }

// Rs2 extracts source register 2.
func Rs2(inst uint32) uint32 { return inst >> 20 & 0x1f }

// Funct3 extracts the minor opcode.
func Funct3(inst uint32) uint32 { return inst >> 12 & 0x7 }

// Funct7 extracts the 7-bit function field.
func Funct7(inst uint32) uint32 { return inst >> 25 }

// ImmI extracts the sign-extended I-type immediate.
func ImmI(inst uint32) int32 { return int32(inst) >> 20 }

// ImmS extracts the sign-extended S-type immediate.
func ImmS(inst uint32) int32 {
	return int32(inst)>>25<<5 | int32(inst>>7&0x1f)
}

// ImmB extracts the sign-extended B-type immediate.
func ImmB(inst uint32) int32 {
	imm := int32(inst)>>31<<12 |
		int32(inst>>7&1)<<11 |
		int32(inst>>25&0x3f)<<5 |
		int32(inst>>8&0xf)<<1
	return imm
}

// ImmU extracts the U-type immediate (already shifted).
func ImmU(inst uint32) int32 { return int32(inst & 0xfffff000) }

// ImmJ extracts the sign-extended J-type immediate.
func ImmJ(inst uint32) int32 {
	return int32(inst)>>31<<20 |
		int32(inst>>12&0xff)<<12 |
		int32(inst>>20&1)<<11 |
		int32(inst>>21&0x3ff)<<1
}

// Encoders.

func encR(f7, rs2, rs1, f3, rd, op uint32) uint32 {
	return f7<<25 | rs2<<20 | rs1<<15 | f3<<12 | rd<<7 | op
}

func encI(imm int32, rs1, f3, rd, op uint32) uint32 {
	return uint32(imm)<<20 | rs1<<15 | f3<<12 | rd<<7 | op
}

func encS(imm int32, rs2, rs1, f3, op uint32) uint32 {
	u := uint32(imm)
	return u>>5<<25 | rs2<<20 | rs1<<15 | f3<<12 | (u&0x1f)<<7 | op
}

func encB(imm int32, rs2, rs1, f3, op uint32) uint32 {
	u := uint32(imm)
	return (u>>12&1)<<31 | (u>>5&0x3f)<<25 | rs2<<20 | rs1<<15 |
		f3<<12 | (u>>1&0xf)<<8 | (u>>11&1)<<7 | op
}

func encU(imm int32, rd, op uint32) uint32 {
	return uint32(imm)&0xfffff000 | rd<<7 | op
}

func encJ(imm int32, rd, op uint32) uint32 {
	u := uint32(imm)
	return (u>>20&1)<<31 | (u>>1&0x3ff)<<21 | (u>>11&1)<<20 |
		(u>>12&0xff)<<12 | rd<<7 | op
}

// Disassemble renders an instruction for debugger output.
func Disassemble(inst uint32) string {
	switch OpcodeOf(inst) {
	case OpLui:
		return fmt.Sprintf("lui x%d, 0x%x", Rd(inst), uint32(ImmU(inst))>>12)
	case OpAuipc:
		return fmt.Sprintf("auipc x%d, 0x%x", Rd(inst), uint32(ImmU(inst))>>12)
	case OpJal:
		return fmt.Sprintf("jal x%d, %d", Rd(inst), ImmJ(inst))
	case OpJalr:
		return fmt.Sprintf("jalr x%d, %d(x%d)", Rd(inst), ImmI(inst), Rs1(inst))
	case OpBranch:
		names := map[uint32]string{F3Beq: "beq", F3Bne: "bne", F3Blt: "blt", F3Bge: "bge", F3Bltu: "bltu", F3Bgeu: "bgeu"}
		if n, ok := names[Funct3(inst)]; ok {
			return fmt.Sprintf("%s x%d, x%d, %d", n, Rs1(inst), Rs2(inst), ImmB(inst))
		}
	case OpLoad:
		if Funct3(inst) == 0b010 {
			return fmt.Sprintf("lw x%d, %d(x%d)", Rd(inst), ImmI(inst), Rs1(inst))
		}
	case OpStore:
		if Funct3(inst) == 0b010 {
			return fmt.Sprintf("sw x%d, %d(x%d)", Rs2(inst), ImmS(inst), Rs1(inst))
		}
	case OpImm:
		names := map[uint32]string{F3AddSub: "addi", F3Slt: "slti", F3Sltu: "sltiu", F3Xor: "xori", F3Or: "ori", F3And: "andi"}
		f3 := Funct3(inst)
		if inst == 0x00000013 {
			return "nop"
		}
		if n, ok := names[f3]; ok {
			return fmt.Sprintf("%s x%d, x%d, %d", n, Rd(inst), Rs1(inst), ImmI(inst))
		}
		switch f3 {
		case F3Sll:
			return fmt.Sprintf("slli x%d, x%d, %d", Rd(inst), Rs1(inst), Rs2(inst))
		case F3SrlSra:
			if Funct7(inst)&0x20 != 0 {
				return fmt.Sprintf("srai x%d, x%d, %d", Rd(inst), Rs1(inst), Rs2(inst))
			}
			return fmt.Sprintf("srli x%d, x%d, %d", Rd(inst), Rs1(inst), Rs2(inst))
		}
	case OpReg:
		f3, f7 := Funct3(inst), Funct7(inst)
		name := ""
		switch {
		case f3 == F3AddSub && f7 == 0:
			name = "add"
		case f3 == F3AddSub && f7 == 0x20:
			name = "sub"
		case f3 == F3Sll:
			name = "sll"
		case f3 == F3Slt:
			name = "slt"
		case f3 == F3Sltu:
			name = "sltu"
		case f3 == F3Xor:
			name = "xor"
		case f3 == F3SrlSra && f7 == 0:
			name = "srl"
		case f3 == F3SrlSra && f7 == 0x20:
			name = "sra"
		case f3 == F3Or:
			name = "or"
		case f3 == F3And:
			name = "and"
		}
		if name != "" {
			return fmt.Sprintf("%s x%d, x%d, x%d", name, Rd(inst), Rs1(inst), Rs2(inst))
		}
	}
	return fmt.Sprintf(".word 0x%08x", inst)
}
