package riscv

import "fmt"

// TohostAddr is the magic address benchmarks store their result to; a write
// there halts the machine (and the testbenches watching the cores).
const TohostAddr uint32 = 0x4000_0000

// Memory is a sparse word-addressable memory image shared by the reference
// simulator and the pipelined cores' external functions. Reads of unwritten
// words return zero.
type Memory struct {
	words map[uint32]uint32
}

// NewMemory returns an empty memory.
func NewMemory() *Memory { return &Memory{words: make(map[uint32]uint32)} }

// LoadWords copies a program or data image starting at base (byte address,
// word aligned).
func (m *Memory) LoadWords(base uint32, ws []uint32) {
	for i, w := range ws {
		m.words[base/4+uint32(i)] = w
	}
}

// ReadWord returns the word containing the byte address addr.
func (m *Memory) ReadWord(addr uint32) uint32 { return m.words[addr/4] }

// WriteWord stores a word at the byte address addr.
func (m *Memory) WriteWord(addr, v uint32) { m.words[addr/4] = v }

// Words returns a copy of the image keyed by word index (byte address / 4),
// for serializing the memory into generated code. The copy keeps callers
// from aliasing the live image.
func (m *Memory) Words() map[uint32]uint32 {
	out := make(map[uint32]uint32, len(m.words))
	for k, v := range m.words {
		out[k] = v
	}
	return out
}

// Clone returns a deep copy (for running several engines on one image).
func (m *Memory) Clone() *Memory {
	out := NewMemory()
	for k, v := range m.words {
		out.words[k] = v
	}
	return out
}

// Machine is the reference RV32I simulator: the golden model the pipelined
// cores are validated against. It executes one instruction per Step.
type Machine struct {
	PC      uint32
	Regs    [32]uint32
	Mem     *Memory
	Halted  bool
	ToHost  uint32
	Instret uint64
}

// NewMachine returns a machine at PC 0 over mem.
func NewMachine(mem *Memory) *Machine { return &Machine{Mem: mem} }

func (m *Machine) setReg(rd, v uint32) {
	if rd != 0 {
		m.Regs[rd] = v
	}
}

// Step executes one instruction. It returns an error on encodings outside
// the supported subset.
func (m *Machine) Step() error {
	if m.Halted {
		return nil
	}
	inst := m.Mem.ReadWord(m.PC)
	next := m.PC + 4
	rs1v := m.Regs[Rs1(inst)]
	rs2v := m.Regs[Rs2(inst)]

	switch OpcodeOf(inst) {
	case OpLui:
		m.setReg(Rd(inst), uint32(ImmU(inst)))
	case OpAuipc:
		m.setReg(Rd(inst), m.PC+uint32(ImmU(inst)))
	case OpJal:
		m.setReg(Rd(inst), m.PC+4)
		target := m.PC + uint32(ImmJ(inst))
		if target == m.PC {
			m.Halted = true // spin loop: conventional halt
		}
		next = target
	case OpJalr:
		m.setReg(Rd(inst), m.PC+4)
		next = (rs1v + uint32(ImmI(inst))) &^ 1
	case OpBranch:
		taken := false
		switch Funct3(inst) {
		case F3Beq:
			taken = rs1v == rs2v
		case F3Bne:
			taken = rs1v != rs2v
		case F3Blt:
			taken = int32(rs1v) < int32(rs2v)
		case F3Bge:
			taken = int32(rs1v) >= int32(rs2v)
		case F3Bltu:
			taken = rs1v < rs2v
		case F3Bgeu:
			taken = rs1v >= rs2v
		default:
			return fmt.Errorf("riscv: bad branch funct3 %d at pc %#x", Funct3(inst), m.PC)
		}
		if taken {
			next = m.PC + uint32(ImmB(inst))
		}
	case OpLoad:
		if Funct3(inst) != 0b010 {
			return fmt.Errorf("riscv: unsupported load width at pc %#x", m.PC)
		}
		m.setReg(Rd(inst), m.Mem.ReadWord(rs1v+uint32(ImmI(inst))))
	case OpStore:
		if Funct3(inst) != 0b010 {
			return fmt.Errorf("riscv: unsupported store width at pc %#x", m.PC)
		}
		addr := rs1v + uint32(ImmS(inst))
		m.Mem.WriteWord(addr, rs2v)
		if addr == TohostAddr {
			m.ToHost = rs2v
			m.Halted = true
		}
	case OpImm:
		m.setReg(Rd(inst), aluOp(Funct3(inst), Funct7(inst), true, rs1v, uint32(ImmI(inst))))
	case OpReg:
		m.setReg(Rd(inst), aluOp(Funct3(inst), Funct7(inst), false, rs1v, rs2v))
	default:
		return fmt.Errorf("riscv: unsupported opcode %#x at pc %#x", OpcodeOf(inst), m.PC)
	}
	m.PC = next
	m.Instret++
	return nil
}

// Run steps until halt or the instruction budget is exhausted, reporting
// whether the machine halted.
func (m *Machine) Run(maxInstrs uint64) (bool, error) {
	for i := uint64(0); i < maxInstrs && !m.Halted; i++ {
		if err := m.Step(); err != nil {
			return false, err
		}
	}
	return m.Halted, nil
}

// aluOp implements the shared ALU. For immediate forms the subtraction
// encoding is invalid, so f7 is ignored except for shifts.
func aluOp(f3, f7 uint32, isImm bool, a, b uint32) uint32 {
	switch f3 {
	case F3AddSub:
		if !isImm && f7&0x20 != 0 {
			return a - b
		}
		return a + b
	case F3Sll:
		return a << (b & 31)
	case F3Slt:
		if int32(a) < int32(b) {
			return 1
		}
		return 0
	case F3Sltu:
		if a < b {
			return 1
		}
		return 0
	case F3Xor:
		return a ^ b
	case F3SrlSra:
		if f7&0x20 != 0 {
			return uint32(int32(a) >> (b & 31))
		}
		return a >> (b & 31)
	case F3Or:
		return a | b
	default: // F3And
		return a & b
	}
}
