package debug_test

import (
	"strings"
	"testing"

	"cuttlego/internal/bits"
	"cuttlego/internal/cache"
	"cuttlego/internal/debug"
	"cuttlego/internal/sim"
	"cuttlego/internal/stm"
)

func collatzDebugger(t *testing.T) *debug.Debugger {
	t.Helper()
	d, err := debug.New(stm.Collatz(27).MustCheck(), nil)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestStepAndPrint(t *testing.T) {
	d := collatzDebugger(t)
	d.Step()
	if d.CycleCount() != 1 {
		t.Fatalf("cycle = %d", d.CycleCount())
	}
	out := d.Print("x")
	if !strings.HasPrefix(out, "x = 32'x") {
		t.Errorf("Print = %q", out)
	}
	all := d.PrintAll()
	for _, want := range []string{"x = ", "steps = ", "done = "} {
		if !strings.Contains(all, want) {
			t.Errorf("PrintAll missing %q", want)
		}
	}
}

func TestBreakOnRule(t *testing.T) {
	d := collatzDebugger(t)
	d.BreakOnRule("divide")
	if !d.Continue(100) {
		t.Fatal("never hit the rule breakpoint")
	}
	if !strings.Contains(d.StopReason(), "break rule divide") {
		t.Errorf("reason = %q", d.StopReason())
	}
}

func TestBreakOnFail(t *testing.T) {
	// 27 is odd, so "divide" fails in cycle 1.
	d := collatzDebugger(t)
	d.BreakOnFail("divide")
	if !d.Continue(10) {
		t.Fatal("never hit the FAIL breakpoint")
	}
	ev, desc, ok := d.LastFailure()
	if !ok {
		t.Fatal("no failure in trace")
	}
	if ev.Kind != debug.EvFail && ev.OK {
		t.Errorf("unexpected failure event %+v", ev)
	}
	if !strings.Contains(desc, "divide") {
		t.Errorf("failure description %q", desc)
	}
}

func TestWatchpoint(t *testing.T) {
	d := collatzDebugger(t)
	d.Watch("done")
	if !d.Continue(1000) {
		t.Fatal("watchpoint on done never fired")
	}
	if !strings.Contains(d.StopReason(), "watchpoint done") {
		t.Errorf("reason = %q", d.StopReason())
	}
	if !d.Engine().Reg("done").Bool() {
		t.Error("done should be set when the watchpoint fires")
	}
}

func TestBreakOnWrite(t *testing.T) {
	d := collatzDebugger(t)
	d.BreakOnWrite("steps")
	if !d.Continue(10) {
		t.Fatal("write breakpoint never fired")
	}
	if !strings.Contains(d.StopReason(), "break write steps") {
		t.Errorf("reason = %q", d.StopReason())
	}
}

func TestReverseStep(t *testing.T) {
	d := collatzDebugger(t)
	for i := 0; i < 150; i++ {
		d.Step()
	}
	xAt150 := d.Engine().Reg("x")
	if err := d.ReverseStep(30); err != nil {
		t.Fatal(err)
	}
	if d.CycleCount() != 120 {
		t.Fatalf("cycle after rewind = %d", d.CycleCount())
	}
	xAt120 := d.Engine().Reg("x")
	// Forward again must be deterministic.
	for i := 0; i < 30; i++ {
		d.Step()
	}
	if got := d.Engine().Reg("x"); got != xAt150 {
		t.Errorf("replay diverged: %v vs %v", got, xAt150)
	}
	if err := d.ReverseStep(30); err != nil {
		t.Fatal(err)
	}
	if got := d.Engine().Reg("x"); got != xAt120 {
		t.Errorf("second rewind diverged: %v vs %v", got, xAt120)
	}
}

// TestReverseStepAcrossCheckpointBoundary rewinds by amounts that cross one
// and several snapshot boundaries, and rewinds twice in a row to exactly a
// boundary cycle. Regression test for the daemon's remote reverse path: a
// rewind that lands on (or just before) a checkpoint must restore that
// checkpoint, not replay from an earlier one with stale breakpoint state.
func TestReverseStepAcrossCheckpointBoundary(t *testing.T) {
	d := collatzDebugger(t)
	d.SetSnapshotInterval(8) // checkpoints at cycles 8, 16, 24, ...
	ref := collatzDebugger(t)
	run := func(dbg *debug.Debugger, n int) {
		for i := 0; i < n; i++ {
			dbg.Step()
		}
	}
	run(d, 30)
	for _, rewind := range []uint64{1, 7, 8, 9, 20} {
		for d.CycleCount() < 30 { // return to cycle 30 between rewinds
			d.Step()
		}
		target := d.CycleCount() - rewind
		if err := d.ReverseStep(rewind); err != nil {
			t.Fatalf("rewind %d: %v", rewind, err)
		}
		if d.CycleCount() != target {
			t.Fatalf("rewind %d landed at %d, want %d", rewind, d.CycleCount(), target)
		}
		// Replay a fresh debugger to the same cycle and compare state.
		fresh := collatzDebugger(t)
		run(fresh, int(target))
		if got, want := sim.StateDigest(d.Engine()), sim.StateDigest(fresh.Engine()); got != want {
			t.Fatalf("rewind %d: digest %#x != fresh run %#x", rewind, got, want)
		}
	}
	// After all the rewinds, stepping forward must still track a straight
	// run — the snapshot ring must not have been corrupted.
	for d.CycleCount() < 40 {
		d.Step()
	}
	run(ref, 40)
	if sim.StateDigest(d.Engine()) != sim.StateDigest(ref.Engine()) {
		t.Fatal("post-rewind forward execution diverged from a straight run")
	}
	// Breakpoints must survive a boundary-crossing rewind and still fire.
	d.BreakOnRule("divide")
	if err := d.ReverseStep(17); err != nil {
		t.Fatal(err)
	}
	if !d.Continue(100) {
		t.Fatal("breakpoint lost after boundary-crossing rewind")
	}
}

func TestReverseStepErrors(t *testing.T) {
	d := collatzDebugger(t)
	d.Step()
	if err := d.ReverseStep(99); err == nil {
		t.Error("rewinding past cycle 0 should error")
	}
}

func TestRuleStatus(t *testing.T) {
	d := collatzDebugger(t)
	d.Step() // 27 is odd: divide fails, multiply fires
	status := d.RuleStatus()
	if !strings.Contains(status, "divide") || !strings.Contains(status, "FAILED") {
		t.Errorf("status = %q", status)
	}
	if !strings.Contains(status, "multiply") || !strings.Contains(status, "fired") {
		t.Errorf("status = %q", status)
	}
}

func TestSetRegWhatIf(t *testing.T) {
	d := collatzDebugger(t)
	d.SetReg("x", bits.New(32, 1))
	d.Step() // multiply sees 1 and latches done
	if !d.Engine().Reg("done").Bool() {
		t.Error("poked value should converge immediately")
	}
}

// TestCaseStudy1Walkthrough replays the paper's §4.2 debugging session on
// the buggy MSI system: run to the deadlock, observe the MSHR stuck in
// WaitFillResp and the parent in ConfirmDowngrades with struct-aware
// printing, break on the failing confirm rule, and confirm the failure is
// an explicit abort (the acknowledgement never arrived).
func TestCaseStudy1Walkthrough(t *testing.T) {
	sys := cache.Build(cache.Config{BugDroppedAck: true})
	if err := sys.Design.Check(); err != nil {
		t.Fatal(err)
	}
	d, err := debug.New(sys.Design, nil)
	if err != nil {
		t.Fatal(err)
	}

	// Run "in gdb until reaching the deadlock state".
	for i := 0; i < 2000; i++ {
		d.Step()
	}

	// Print out the relevant status registers by name.
	parent := d.Print(sys.PStateRg)
	if !strings.Contains(parent, "ConfirmDowngrades") {
		t.Fatalf("parent state = %s", parent)
	}
	stuckChild := int(d.Engine().Reg("p_req_child").Val)
	mshr := d.Print(sys.MSHR[stuckChild])
	if !strings.Contains(mshr, "WaitFillResp") {
		t.Fatalf("MSHR of stuck child = %s", mshr)
	}
	// Fields are accessible by name, not bit slicing.
	if !strings.Contains(mshr, "tag: mshr_tag::WaitFillResp") || !strings.Contains(mshr, "addr: ") {
		t.Errorf("MSHR formatting lacks named fields: %s", mshr)
	}

	// Set a breakpoint on FAIL() in the rule that should make progress.
	d.BreakOnFail("p_confirm")
	if !d.Continue(10) {
		t.Fatal("p_confirm is not failing — no deadlock?")
	}
	ev, desc, ok := d.LastFailure()
	if !ok {
		t.Fatal("no failure recorded")
	}
	// The failure is an explicit abort (empty acknowledgement queue), not
	// a read-write conflict: the paper's second alternative.
	if ev.Kind != debug.EvFail {
		t.Errorf("failure kind = %v, want explicit abort", ev.Kind)
	}
	if !strings.Contains(desc, "explicit abort") {
		t.Errorf("desc = %q", desc)
	}

	// Interactive root-causing: the other child has already downgraded its
	// line (state I), yet the ack never arrived — the downgrade handler
	// dropped it.
	otherChild := 1 - stuckChild
	ackValid := d.Engine().Reg(strings.ReplaceAll("cX_c2p_ack_valid", "X", itoa(otherChild)))
	if ackValid.Bool() {
		t.Error("ack queue should be empty — that is the bug")
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	return "1"
}

func TestHookedDesignMatchesPlain(t *testing.T) {
	// Debug instrumentation must not change behaviour.
	plainD := stm.Collatz(97).MustCheck()
	dbg, err := debug.New(stm.Collatz(97).MustCheck(), nil)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := debug.New(plainD, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		dbg.Step()
		plain.Step()
		for _, r := range []string{"x", "steps", "done"} {
			if dbg.Engine().Reg(r) != plain.Engine().Reg(r) {
				t.Fatalf("cycle %d: %s diverged", i, r)
			}
		}
	}
}

func TestTraceWindow(t *testing.T) {
	d := collatzDebugger(t)
	for i := 0; i < 50; i++ {
		d.Step()
	}
	tr := d.Trace()
	if len(tr) == 0 || len(tr) > 64 {
		t.Errorf("trace window size %d", len(tr))
	}
}

func TestBreakWhenCondition(t *testing.T) {
	d := collatzDebugger(t)
	d.BreakWhen("x below 5", func(e sim.Engine) bool {
		return e.Reg("x").Val < 5
	})
	if !d.Continue(500) {
		t.Fatal("condition never hit")
	}
	if !strings.Contains(d.StopReason(), `condition "x below 5"`) {
		t.Errorf("reason = %q", d.StopReason())
	}
	if got := d.Engine().Reg("x").Val; got >= 5 {
		t.Errorf("stopped with x = %d", got)
	}
	// Conditions survive reverse execution.
	if err := d.ReverseStep(3); err != nil {
		t.Fatal(err)
	}
	if !d.Continue(500) {
		t.Fatal("condition lost after rewind")
	}
}

func TestBreakWhenSource(t *testing.T) {
	d := collatzDebugger(t)
	if err := d.BreakWhenSource("x.rd0() <u 32'd5"); err != nil {
		t.Fatal(err)
	}
	if !d.Continue(500) {
		t.Fatal("textual condition never hit")
	}
	if got := d.Engine().Reg("x").Val; got >= 5 {
		t.Errorf("stopped with x = %d", got)
	}
}

func TestBreakWhenSourceWithEnums(t *testing.T) {
	sys := cache.Build(cache.Config{BugDroppedAck: true})
	if err := sys.Design.Check(); err != nil {
		t.Fatal(err)
	}
	dbg, err := debug.New(sys.Design, nil)
	if err != nil {
		t.Fatal(err)
	}
	// The case-study breakpoint, written exactly as a user would type it.
	if err := dbg.BreakWhenSource("p_state.rd0() == pstate::ConfirmDowngrades"); err != nil {
		t.Fatal(err)
	}
	if !dbg.Continue(3000) {
		t.Fatal("parent never entered ConfirmDowngrades")
	}
	if !strings.Contains(dbg.Print(sys.PStateRg), "ConfirmDowngrades") {
		t.Error("stopped in the wrong state")
	}
}

func TestBreakWhenSourceRejectsEffects(t *testing.T) {
	d := collatzDebugger(t)
	for _, src := range []string{
		"x.wr0(32'd1) == 0'x0", // writes
		"nosuch.rd0()",         // unknown register (caught by the probe check)
		"x.rd0()",              // not 1-bit
	} {
		if err := d.BreakWhenSource(src); err == nil {
			t.Errorf("BreakWhenSource(%q) should fail", src)
		}
	}
}
