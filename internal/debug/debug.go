// Package debug is the software-debugger experience the paper builds on
// top of its generated models: step through a design cycle by cycle, rule
// by rule, or operation by operation; break on rule entry, on FAIL sites,
// or on writes to chosen registers; watch registers for value changes; and
// step backwards via snapshot-and-replay (the rr-style reverse execution of
// Case Study 1). Struct- and enum-typed registers print with their field
// and member names, so protocol state reads as WaitFillResp rather than
// raw bits.
//
// The debugger drives a Cuttlesim simulator compiled with an execution
// hook; everything works on unmodified designs.
package debug

import (
	"fmt"
	"sort"
	"strings"

	"cuttlego/internal/ast"
	"cuttlego/internal/bits"
	"cuttlego/internal/cuttlesim"
	"cuttlego/internal/sim"
)

// Event is one execution event delivered to breakpoint predicates.
type Event struct {
	// Kind discriminates the event.
	Kind EventKind
	// Cycle is the cycle number the event occurred in.
	Cycle uint64
	// Rule is the rule index (valid for all kinds).
	Rule int
	// NodeID is the AST node (ops and fails only).
	NodeID int
	// Reg is the register index (ops only; -1 otherwise).
	Reg int
	// Value is the transferred value (ops only).
	Value uint64
	// OK reports whether the operation's checks passed.
	OK bool
	// Fired reports whether the rule committed (RuleEnd only).
	Fired bool
}

// EventKind enumerates event kinds.
type EventKind int

// Event kinds.
const (
	EvRuleStart EventKind = iota
	EvRuleEnd
	EvOp
	EvFail
)

func (k EventKind) String() string {
	return [...]string{"rule-start", "rule-end", "op", "fail"}[k]
}

// Breakpoint is a predicate over events; execution stops when one returns
// true.
type Breakpoint struct {
	Name string
	Hit  func(*Debugger, Event) bool
}

// Debugger wraps a design in a hooked simulator.
type Debugger struct {
	d   *ast.Design
	sim *cuttlesim.Simulator
	tb  sim.Testbench

	breakpoints []Breakpoint
	conds       []condBreak
	watch       map[int]uint64 // register -> last seen value
	trace       []Event
	traceCap    int

	stopped     bool
	stopReason  string
	currentRule int

	// snapshots for reverse execution
	snapEvery uint64
	snaps     []sim.Snapshot
}

// New builds a debugger for a checked design. The testbench may be nil.
func New(d *ast.Design, tb sim.Testbench) (*Debugger, error) {
	dbg := &Debugger{d: d, tb: tb, watch: map[int]uint64{}, traceCap: 64, snapEvery: 64}
	s, err := cuttlesim.New(d, cuttlesim.Options{Level: cuttlesim.LStatic, Hook: (*hook)(dbg)})
	if err != nil {
		return nil, err
	}
	dbg.sim = s
	if tb == nil {
		dbg.tb = sim.NopBench{}
	}
	dbg.snaps = append(dbg.snaps, s.Snapshot())
	return dbg, nil
}

// hook adapts the debugger to cuttlesim.Hook without exposing the methods
// on Debugger itself.
type hook Debugger

func (h *hook) OnRuleStart(rule int) {
	d := (*Debugger)(h)
	d.currentRule = rule
	d.deliver(Event{Kind: EvRuleStart, Cycle: d.sim.CycleCount(), Rule: rule, Reg: -1})
}

func (h *hook) OnRuleEnd(rule int, fired bool) {
	d := (*Debugger)(h)
	d.deliver(Event{Kind: EvRuleEnd, Cycle: d.sim.CycleCount(), Rule: rule, Reg: -1, Fired: fired})
}

func (h *hook) OnOp(nodeID, reg int, value uint64, ok bool) {
	d := (*Debugger)(h)
	kind := EvOp
	if reg < 0 {
		kind = EvFail
	}
	d.deliver(Event{Kind: kind, Cycle: d.sim.CycleCount(), Rule: d.currentRule,
		NodeID: nodeID, Reg: reg, Value: value, OK: ok})
}

func (d *Debugger) deliver(ev Event) {
	if len(d.trace) >= d.traceCap {
		copy(d.trace, d.trace[1:])
		d.trace = d.trace[:len(d.trace)-1]
	}
	d.trace = append(d.trace, ev)
	for _, bp := range d.breakpoints {
		if bp.Hit(d, ev) {
			d.stopped = true
			d.stopReason = fmt.Sprintf("%s at cycle %d, rule %s (%v)",
				bp.Name, ev.Cycle, d.d.Rules[ev.Rule].Name, ev.Kind)
		}
	}
}

// SetSnapshotInterval changes how often the debugger checkpoints for
// reverse execution (default 64 cycles). Smaller intervals make ReverseStep
// cheaper at the cost of memory; tests use it to exercise rewinds that
// cross checkpoint boundaries.
func (d *Debugger) SetSnapshotInterval(n uint64) {
	if n == 0 {
		n = 1
	}
	d.snapEvery = n
}

// Design returns the debugged design.
func (d *Debugger) Design() *ast.Design { return d.d }

// Engine returns the underlying simulator (for register access).
func (d *Debugger) Engine() sim.Engine { return d.sim }

// CycleCount returns the current cycle.
func (d *Debugger) CycleCount() uint64 { return d.sim.CycleCount() }

// Trace returns the most recent events (oldest first).
func (d *Debugger) Trace() []Event { return d.trace }

// StopReason describes why the last Continue stopped ("" if it ran out of
// budget).
func (d *Debugger) StopReason() string { return d.stopReason }

// --- breakpoints -----------------------------------------------------------

// BreakOnRule stops when the named rule starts executing.
func (d *Debugger) BreakOnRule(rule string) {
	idx := d.d.RuleIndex(rule)
	d.breakpoints = append(d.breakpoints, Breakpoint{
		Name: "break rule " + rule,
		Hit: func(_ *Debugger, ev Event) bool {
			return ev.Kind == EvRuleStart && ev.Rule == idx
		},
	})
}

// BreakOnFail stops at any abort site — the FAIL() breakpoint of Case
// Study 1. An optional rule name restricts it.
func (d *Debugger) BreakOnFail(rule string) {
	idx := -1
	if rule != "" {
		idx = d.d.RuleIndex(rule)
	}
	d.breakpoints = append(d.breakpoints, Breakpoint{
		Name: "break fail " + rule,
		Hit: func(_ *Debugger, ev Event) bool {
			if ev.Kind == EvFail || ev.Kind == EvOp && !ev.OK {
				return idx < 0 || ev.Rule == idx
			}
			return false
		},
	})
}

// BreakOnWrite stops when the named register is written.
func (d *Debugger) BreakOnWrite(reg string) {
	idx := d.d.RegIndex(reg)
	d.breakpoints = append(d.breakpoints, Breakpoint{
		Name: "break write " + reg,
		Hit: func(dbg *Debugger, ev Event) bool {
			return ev.Kind == EvOp && ev.OK && ev.Reg == idx && dbg.isWrite(ev.NodeID)
		},
	})
}

// BreakWhen stops at the end of any cycle in which the predicate holds —
// gdb's conditional breakpoints, with the whole architectural state in
// scope. The predicate must not advance the engine.
func (d *Debugger) BreakWhen(name string, cond func(sim.Engine) bool) {
	d.conds = append(d.conds, condBreak{name: name, cond: cond})
}

// Watch stops between cycles when the named register's committed value
// changes (a hardware watchpoint).
func (d *Debugger) Watch(reg string) {
	idx := d.d.RegIndex(reg)
	d.watch[idx] = d.sim.Reg(reg).Val
}

// ClearBreakpoints removes all breakpoints, conditions, and watchpoints.
func (d *Debugger) ClearBreakpoints() {
	d.breakpoints = nil
	d.conds = nil
	d.watch = map[int]uint64{}
}

// isWrite reports whether a node ID is a write op (cached lazily).
func (d *Debugger) isWrite(nodeID int) bool {
	n := findNode(d.d, nodeID)
	return n != nil && n.Kind == ast.KWrite
}

func findNode(d *ast.Design, id int) *ast.Node {
	var found *ast.Node
	var walk func(n *ast.Node)
	walk = func(n *ast.Node) {
		if n == nil || found != nil {
			return
		}
		if n.ID == id {
			found = n
			return
		}
		walk(n.A)
		walk(n.B)
		walk(n.C)
		for _, it := range n.Items {
			walk(it)
		}
	}
	for i := range d.Rules {
		walk(d.Rules[i].Body)
		if found != nil {
			break
		}
	}
	return found
}

// --- execution --------------------------------------------------------------

// Step runs exactly one cycle (breakpoints are reported but do not abort
// the cycle: cycles are atomic).
func (d *Debugger) Step() {
	d.stopped = false
	d.stopReason = ""
	d.tb.BeforeCycle(d.sim)
	d.sim.Cycle()
	d.tb.AfterCycle(d.sim)
	d.checkWatches()
	if d.sim.CycleCount()%d.snapEvery == 0 {
		d.snaps = append(d.snaps, d.sim.Snapshot())
	}
}

// Continue runs until a breakpoint or watchpoint fires, or maxCycles pass.
// It reports whether it stopped at a break.
func (d *Debugger) Continue(maxCycles uint64) bool {
	d.stopped = false
	d.stopReason = ""
	for i := uint64(0); i < maxCycles; i++ {
		d.tb.BeforeCycle(d.sim)
		d.sim.Cycle()
		d.tb.AfterCycle(d.sim)
		d.checkWatches()
		if d.sim.CycleCount()%d.snapEvery == 0 {
			d.snaps = append(d.snaps, d.sim.Snapshot())
		}
		if d.stopped {
			return true
		}
	}
	return false
}

type condBreak struct {
	name string
	cond func(sim.Engine) bool
}

func (d *Debugger) checkWatches() {
	for _, cb := range d.conds {
		if cb.cond(d.sim) {
			d.stopped = true
			d.stopReason = fmt.Sprintf("condition %q at cycle %d", cb.name, d.sim.CycleCount())
		}
	}
	for idx, last := range d.watch {
		name := d.d.Registers[idx].Name
		now := d.sim.Reg(name).Val
		if now != last {
			d.watch[idx] = now
			d.stopped = true
			d.stopReason = fmt.Sprintf("watchpoint %s: %#x -> %#x at cycle %d",
				name, last, now, d.sim.CycleCount())
		}
	}
}

// ReverseStep rewinds the machine n cycles by restoring the nearest
// earlier snapshot and deterministically re-executing forward. The
// testbench must be deterministic (all shipped benches are); watchpoints
// and breakpoints are suppressed during replay.
func (d *Debugger) ReverseStep(n uint64) error {
	target := d.sim.CycleCount()
	if n > target {
		return fmt.Errorf("debug: cannot rewind %d cycles from cycle %d", n, target)
	}
	target -= n
	// Find the latest snapshot at or before target.
	i := sort.Search(len(d.snaps), func(i int) bool { return d.snaps[i].Cycle > target }) - 1
	if i < 0 {
		return fmt.Errorf("debug: no snapshot before cycle %d", target)
	}
	if r, ok := d.tb.(Rewindable); ok {
		r.Rewind(d.snaps[i].Cycle)
	}
	d.sim.Restore(d.snaps[i])
	d.snaps = d.snaps[:i+1]
	saved := d.breakpoints
	savedConds := d.conds
	savedWatch := d.watch
	d.breakpoints = nil
	d.conds = nil
	d.watch = map[int]uint64{}
	for d.sim.CycleCount() < target {
		d.Step()
	}
	d.breakpoints = saved
	d.conds = savedConds
	d.watch = savedWatch
	for idx := range d.watch {
		d.watch[idx] = d.sim.Reg(d.d.Registers[idx].Name).Val
	}
	d.stopped = false
	d.stopReason = ""
	return nil
}

// Rewindable is implemented by testbenches whose state can be rolled back
// to a cycle boundary for deterministic replay.
type Rewindable interface {
	Rewind(cycle uint64)
}

// --- inspection --------------------------------------------------------------

// Print renders a register with its type's formatting (enum member names,
// struct fields — no bit slicing by hand, no custom pretty printers).
func (d *Debugger) Print(reg string) string {
	i := d.d.RegIndex(reg)
	v := d.sim.Reg(reg)
	return fmt.Sprintf("%s = %s", reg, d.d.Registers[i].Type.Format(v))
}

// PrintAll renders every register, one per line.
func (d *Debugger) PrintAll() string {
	var sb strings.Builder
	for _, r := range d.d.Registers {
		fmt.Fprintf(&sb, "%s = %s\n", r.Name, r.Type.Format(d.sim.Reg(r.Name)))
	}
	return sb.String()
}

// RuleStatus summarizes the last executed cycle.
func (d *Debugger) RuleStatus() string {
	var sb strings.Builder
	for _, name := range d.d.Schedule {
		status := "FAILED"
		if d.sim.RuleFired(name) {
			status = "fired"
		}
		fmt.Fprintf(&sb, "%-24s %s\n", name, status)
	}
	return sb.String()
}

// LastFailure returns the most recent failure event and a description of
// where it happened, if any failure is in the trace window.
func (d *Debugger) LastFailure() (Event, string, bool) {
	return d.lastFailure(-1)
}

// LastFailureIn is LastFailure restricted to one rule.
func (d *Debugger) LastFailureIn(rule string) (Event, string, bool) {
	return d.lastFailure(d.d.RuleIndex(rule))
}

func (d *Debugger) lastFailure(rule int) (Event, string, bool) {
	for i := len(d.trace) - 1; i >= 0; i-- {
		ev := d.trace[i]
		if rule >= 0 && ev.Rule != rule {
			continue
		}
		if ev.Kind == EvFail || ev.Kind == EvOp && !ev.OK {
			desc := fmt.Sprintf("rule %s", d.d.Rules[ev.Rule].Name)
			if ev.Reg >= 0 {
				desc += fmt.Sprintf(", conflicting access to %s", d.d.Registers[ev.Reg].Name)
			} else {
				desc += ", explicit abort"
			}
			return ev, desc, true
		}
	}
	return Event{}, "", false
}

// SetReg pokes a register (useful for what-if exploration at a prompt).
func (d *Debugger) SetReg(reg string, v bits.Bits) { d.sim.SetReg(reg, v) }
