package debug

import (
	"fmt"

	"cuttlego/internal/ast"
	"cuttlego/internal/interp"
	"cuttlego/internal/lang"
	"cuttlego/internal/sim"
)

// BreakWhenSource installs a conditional breakpoint written in the textual
// dialect, e.g.
//
//	dbg.BreakWhenSource("p_state.rd0() == pstate::ConfirmDowngrades")
//
// The expression must be 1-bit and effect-free (reads only). It is
// compiled once into a tiny single-rule probe design sharing the debugged
// design's registers and types; evaluating the condition copies the live
// state into the probe and runs it for one cycle — slow enough only to
// matter while debugging, which is exactly when it runs.
func (d *Debugger) BreakWhenSource(src string) error {
	probe, err := CompileCondition(d.d, src)
	if err != nil {
		return err
	}
	d.BreakWhen(src, probe)
	return nil
}

// CompileCondition turns a textual predicate over a design's registers into
// a reusable evaluator that works against any sim.Engine for that design —
// not just the debugger's hooked simulator. The simulation daemon uses it
// to attach conditional breakpoints to remote sessions regardless of which
// engine the session selected.
func CompileCondition(design *ast.Design, src string) (func(sim.Engine) bool, error) {
	expr, err := lang.ParseExpr(design, src)
	if err != nil {
		return nil, err
	}
	if err := checkEffectFree(expr); err != nil {
		return nil, err
	}
	tmp := ast.NewDesign("$probe")
	for _, r := range design.Registers {
		tmp.RegB(r.Name, r.Type, r.Init)
	}
	tmp.Reg("$cond", ast.Bits(1), 0)
	tmp.Rule("$probe", ast.Wr0("$cond", expr))
	if err := tmp.Check(); err != nil {
		return nil, fmt.Errorf("condition %q: %w", src, err)
	}
	eval, err := interp.New(tmp)
	if err != nil {
		return nil, err
	}
	regs := design.Registers
	return func(e sim.Engine) bool {
		for _, r := range regs {
			eval.SetReg(r.Name, e.Reg(r.Name))
		}
		eval.Cycle()
		return eval.Reg("$cond").Bool()
	}, nil
}

// checkEffectFree rejects writes and aborts inside a breakpoint condition.
func checkEffectFree(n *ast.Node) error {
	if n == nil {
		return nil
	}
	switch n.Kind {
	case ast.KWrite:
		return fmt.Errorf("breakpoint conditions must not write registers (%s)", n.Name)
	case ast.KFail:
		return fmt.Errorf("breakpoint conditions must not abort")
	case ast.KExtCall:
		return fmt.Errorf("breakpoint conditions must not call external functions")
	}
	for _, c := range []*ast.Node{n.A, n.B, n.C} {
		if err := checkEffectFree(c); err != nil {
			return err
		}
	}
	for _, it := range n.Items {
		if err := checkEffectFree(it); err != nil {
			return err
		}
	}
	return nil
}
