package cppgen_test

import (
	"strings"
	"testing"

	"cuttlego/internal/ast"
	"cuttlego/internal/cppgen"
	"cuttlego/internal/testkit"
)

func TestEmitModelStructure(t *testing.T) {
	entry := testkit.Zoo()[1] // two-state machine
	text, err := cppgen.Emit(entry.Build().MustCheck())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"class stm : public cuttlesim::module",
		"enum class state",
		"DEF_RULE(rlA)",
		"DEF_RULE(rlB)",
		"COMMIT();",
		"void cycle()",
		"rule_rlA();",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("model missing %q:\n%s", want, text)
		}
	}
}

func TestFastMacrosForSafeRegisters(t *testing.T) {
	d := ast.NewDesign("safe")
	d.Reg("x", ast.Bits(8), 0)
	d.Reg("shared", ast.Bits(8), 0)
	d.Rule("a", ast.Wr0("x", ast.Add(ast.Rd0("x"), ast.C(8, 1))), ast.Wr0("shared", ast.C(8, 1)))
	d.Rule("b", ast.Wr0("shared", ast.C(8, 2)))
	text, err := cppgen.Emit(d.MustCheck())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "READ0_FAST(x)") || !strings.Contains(text, "WRITE0_FAST(x, ") {
		t.Errorf("safe register should use _FAST macros:\n%s", text)
	}
	if !strings.Contains(text, "WRITE0(shared, ") {
		t.Errorf("unsafe register must use checked macros:\n%s", text)
	}
}

func TestCleanFailuresAnnotated(t *testing.T) {
	d := ast.NewDesign("g")
	d.Reg("c", ast.Bits(1), 0)
	d.Reg("x", ast.Bits(8), 0)
	d.Rule("r",
		ast.Guard(ast.Rd0("c")),
		ast.Wr0("x", ast.C(8, 1)),
		ast.Guard(ast.Rd0("c")))
	text, err := cppgen.Emit(d.MustCheck())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "FAIL_FAST();") {
		t.Error("early guard should compile to FAIL_FAST")
	}
	if !strings.Contains(text, "FAIL();") {
		t.Error("late guard should compile to FAIL")
	}
}

func TestAllZooDesignsEmit(t *testing.T) {
	for _, entry := range testkit.Zoo() {
		lc, err := cppgen.LineCount(entry.Build().MustCheck())
		if err != nil {
			t.Fatalf("%s: %v", entry.Name, err)
		}
		if lc < 10 {
			t.Errorf("%s: implausible model size %d lines", entry.Name, lc)
		}
	}
}

func TestStructsRenderedByName(t *testing.T) {
	entry := testkit.Zoo()[7] // structs-and-switch
	text, err := cppgen.Emit(entry.Build().MustCheck())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"struct req", "enum class op"} {
		if !strings.Contains(text, want) {
			t.Errorf("model missing %q", want)
		}
	}
}

func TestSwitchStatementRendering(t *testing.T) {
	op := ast.NewEnum("cmd", 2, "Go", "Stop")
	d := ast.NewDesign("sw")
	d.Reg("o", op, 0)
	d.Reg("x", ast.Bits(8), 0)
	d.Rule("r", ast.Switch(ast.Rd0("o"), ast.Skip(),
		ast.Case{Match: ast.E(op, "Go"), Body: ast.Wr0("x", ast.C(8, 1))},
	))
	text, err := cppgen.Emit(d.MustCheck())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"switch (", "case cmd::Go:", "default:"} {
		if !strings.Contains(text, want) {
			t.Errorf("model missing %q:\n%s", want, text)
		}
	}
}
