// Package netopt is the netlist optimization pipeline sitting between the
// hardware compiler (package circuit) and the cycle-based simulator
// (package rtlsim). The paper compares Cuttlesim against Verilator, a
// heavily optimized cycle-based simulator; our rtlsim stand-in is honest
// only if the netlists it executes have been cleaned up the way a real
// RTL simulator's frontend would clean them. The pipeline applies three
// classic netlist passes to a fixpoint:
//
//   - constant folding and propagation: operators with constant inputs are
//     evaluated at compile time, muxes with constant selectors collapse to
//     one arm, and algebraic identities (x&0, x|~0, x^x, x+0, shifts by
//     zero, mux with equal or complementary 1-bit arms, mux under an
//     inverted selector, nested muxes on one selector) are rewritten;
//   - common-subexpression coalescing: the rewritten nets are re-interned,
//     so nodes that become structurally identical only after folding share
//     an index (the builder's hash-consing catches only pre-fold sharing);
//   - dead-net elimination: a mark-and-sweep from the circuit's roots —
//     register next-value nets, will-fire signals, and external calls
//     (which may carry side effects and are never deleted) — drops every
//     net that cannot influence observable behaviour.
//
// All passes preserve the topological ordering rtlsim's levelized plan
// relies on, and every optimized circuit must stay cycle-for-cycle
// equivalent to the reference interpreter (enforced by the cross-engine
// equivalence tests).
package netopt

import (
	"fmt"

	"cuttlego/internal/ast"
	"cuttlego/internal/bits"
	"cuttlego/internal/circuit"
)

// Options selects passes. The zero value runs nothing; use All for the
// full pipeline.
type Options struct {
	Fold bool // constant folding/propagation + algebraic identities
	CSE  bool // re-intern rewritten nets (coalesce post-fold duplicates)
	DCE  bool // sweep nets not feeding a root
}

// All enables every pass.
func All() Options { return Options{Fold: true, CSE: true, DCE: true} }

// Result carries the optimized circuit plus before/after netlist stats so
// reports can show what each design gained.
type Result struct {
	Circuit *circuit.Circuit
	Before  circuit.Stats
	After   circuit.Stats
}

// Optimize runs the selected passes and returns a fresh circuit; the input
// is never mutated. Optimize is idempotent: running it on its own output
// changes nothing.
func Optimize(ckt *circuit.Circuit, opts Options) Result {
	res := Result{Circuit: ckt, Before: ckt.Stats()}
	out := ckt
	if opts.Fold || opts.CSE {
		out = rewrite(out, opts)
	}
	if opts.DCE {
		out = sweep(out)
	}
	res.Circuit = out
	res.After = out.Stats()
	return res
}

// MustOptimize is Optimize with the full pipeline, returning only the
// circuit. It is the form the engine constructors use.
func MustOptimize(ckt *circuit.Circuit) *circuit.Circuit {
	return Optimize(ckt, All()).Circuit
}

// rw is the rewriting context: a partially built output netlist with an
// interning memo, mirroring circuit's builder but over already-lowered
// nets.
type rw struct {
	nets []circuit.Net
	memo map[string]int
	fold bool
}

func (r *rw) intern(n circuit.Net) int {
	key := fmt.Sprintf("%d|%d|%d|%d|%d|%d|%d|%d|%v", n.Kind, n.W, n.Op, n.Lo, n.Wid, n.Val, n.Reg, n.Ext, n.Args)
	if i, ok := r.memo[key]; ok {
		return i
	}
	i := len(r.nets)
	r.nets = append(r.nets, n)
	r.memo[key] = i
	return i
}

func (r *rw) constant(w int, v uint64) int {
	return r.intern(circuit.Net{Kind: circuit.NConst, W: w, Val: v & bits.Mask(w)})
}

func (r *rw) isConst(i int) (uint64, bool) {
	if r.nets[i].Kind == circuit.NConst {
		return r.nets[i].Val, true
	}
	return 0, false
}

// rewrite maps every net through fold/CSE in topological order. Because
// arguments are remapped before a node is interned, the output list is
// topologically ordered too.
func rewrite(ckt *circuit.Circuit, opts Options) *circuit.Circuit {
	r := &rw{memo: make(map[string]int, len(ckt.Nets)), fold: opts.Fold}
	remap := make([]int, len(ckt.Nets))
	for i, n := range ckt.Nets {
		m := n // shallow copy; Args rewritten below
		if len(n.Args) > 0 {
			m.Args = make([]int, len(n.Args))
			for j, a := range n.Args {
				m.Args[j] = remap[a]
			}
		}
		remap[i] = r.rewriteNet(m)
	}
	out := &circuit.Circuit{Design: ckt.Design, Style: ckt.Style, Nets: r.nets}
	out.Next = make([]int, len(ckt.Next))
	for reg, ni := range ckt.Next {
		out.Next[reg] = remap[ni]
	}
	out.WillFire = make([]int, len(ckt.WillFire))
	for si, ni := range ckt.WillFire {
		out.WillFire[si] = remap[ni]
	}
	return out
}

// rewriteNet simplifies one net whose arguments are already rewritten,
// then interns it.
func (r *rw) rewriteNet(n circuit.Net) int {
	if !r.fold {
		return r.intern(n)
	}
	switch n.Kind {
	case circuit.NUnop:
		return r.rewriteUnop(n)
	case circuit.NBinop:
		return r.rewriteBinop(n)
	case circuit.NMux:
		return r.rewriteMux(n)
	}
	return r.intern(n)
}

func (r *rw) rewriteUnop(n circuit.Net) int {
	x := n.Args[0]
	if v, ok := r.isConst(x); ok {
		a := bits.Bits{Width: r.nets[x].W, Val: v}
		var out bits.Bits
		switch n.Op {
		case ast.OpNot:
			out = a.Not()
		case ast.OpSignExtend:
			out = a.SignExtend(n.Wid)
		case ast.OpZeroExtend:
			out = a.ZeroExtend(n.Wid)
		case ast.OpSlice:
			out = a.Slice(n.Lo, n.Wid)
		default:
			return r.intern(n)
		}
		return r.constant(out.Width, out.Val)
	}
	switch n.Op {
	case ast.OpNot:
		// not(not(x)) = x.
		if inner := &r.nets[x]; inner.Kind == circuit.NUnop && inner.Op == ast.OpNot {
			return inner.Args[0]
		}
	case ast.OpZeroExtend:
		if r.nets[x].W == n.W {
			return x
		}
	case ast.OpSlice:
		if n.Lo == 0 && n.Wid == r.nets[x].W {
			return x
		}
	}
	return r.intern(n)
}

func (r *rw) rewriteBinop(n circuit.Net) int {
	x, y := n.Args[0], n.Args[1]
	xv, xc := r.isConst(x)
	yv, yc := r.isConst(y)
	if xc && yc {
		out := circuit.EvalBinop(n.Op, bits.Bits{Width: r.nets[x].W, Val: xv}, bits.Bits{Width: r.nets[y].W, Val: yv})
		return r.constant(out.Width, out.Val)
	}
	w := n.W
	full := bits.Mask(w)
	switch n.Op {
	case ast.OpAnd:
		if xc && xv == full || x == y {
			return y
		}
		if yc && yv == full {
			return x
		}
		if xc && xv == 0 || yc && yv == 0 {
			return r.constant(w, 0)
		}
	case ast.OpOr:
		if xc && xv == 0 || x == y {
			return y
		}
		if yc && yv == 0 {
			return x
		}
		if xc && xv == full || yc && yv == full {
			return r.constant(w, full)
		}
	case ast.OpXor:
		if x == y {
			return r.constant(w, 0)
		}
		if xc && xv == 0 {
			return y
		}
		if yc && yv == 0 {
			return x
		}
	case ast.OpAdd:
		if xc && xv == 0 && r.nets[y].W == w {
			return y
		}
		if yc && yv == 0 && r.nets[x].W == w {
			return x
		}
	case ast.OpSub:
		if x == y {
			return r.constant(w, 0)
		}
		if yc && yv == 0 && r.nets[x].W == w {
			return x
		}
	case ast.OpMul:
		if xc && xv == 0 || yc && yv == 0 {
			return r.constant(w, 0)
		}
		if xc && xv == 1 && r.nets[y].W == w {
			return y
		}
		if yc && yv == 1 && r.nets[x].W == w {
			return x
		}
	case ast.OpSll, ast.OpSrl, ast.OpSra:
		if yc && yv == 0 && r.nets[x].W == w {
			return x
		}
	case ast.OpEq:
		if x == y {
			return r.constant(1, 1)
		}
	case ast.OpNeq:
		if x == y {
			return r.constant(1, 0)
		}
	}
	return r.intern(n)
}

func (r *rw) rewriteMux(n circuit.Net) int {
	sel, a, b := n.Args[0], n.Args[1], n.Args[2]
	if v, ok := r.isConst(sel); ok {
		if v != 0 {
			return a
		}
		return b
	}
	if a == b {
		return a
	}
	// mux(!s, a, b) = mux(s, b, a); the Not stays around only if something
	// else uses it (DCE sweeps it otherwise).
	if sn := &r.nets[sel]; sn.Kind == circuit.NUnop && sn.Op == ast.OpNot && sn.W == 1 {
		sel, a, b = sn.Args[0], b, a
	}
	// Nested muxes on the same selector can drop the inner mux.
	if an := &r.nets[a]; an.Kind == circuit.NMux && an.Args[0] == sel {
		a = an.Args[1]
	}
	if bn := &r.nets[b]; bn.Kind == circuit.NMux && bn.Args[0] == sel {
		b = bn.Args[2]
	}
	if a == b {
		return a
	}
	// 1-bit muxes over constant arms reduce to the selector (or its
	// complement).
	if n.W == 1 {
		av, aok := r.isConst(a)
		bv, bok := r.isConst(b)
		if aok && bok {
			if av == 1 && bv == 0 {
				return sel
			}
			if av == 0 && bv == 1 {
				return r.intern(circuit.Net{Kind: circuit.NUnop, W: 1, Op: ast.OpNot, Args: []int{sel}})
			}
		}
	}
	return r.intern(circuit.Net{Kind: circuit.NMux, W: n.W, Args: []int{sel, a, b}})
}

// sweep performs dead-net elimination: mark every net reachable from a
// root, then compact the netlist preserving order. Roots are the register
// next-value nets, the will-fire signals, and every external call (calls
// may have side effects — a memory model, a UART — so they are pinned even
// when their results are unused, matching rtlsim's evaluation of every
// planned ext net).
func sweep(ckt *circuit.Circuit) *circuit.Circuit {
	live := make([]bool, len(ckt.Nets))
	var stack []int
	mark := func(i int) {
		if !live[i] {
			live[i] = true
			stack = append(stack, i)
		}
	}
	for _, ni := range ckt.Next {
		mark(ni)
	}
	for _, ni := range ckt.WillFire {
		mark(ni)
	}
	for i := range ckt.Nets {
		if ckt.Nets[i].Kind == circuit.NExt {
			mark(i)
		}
	}
	for len(stack) > 0 {
		i := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, a := range ckt.Nets[i].Args {
			mark(a)
		}
	}

	remap := make([]int, len(ckt.Nets))
	nets := make([]circuit.Net, 0, len(ckt.Nets))
	for i, n := range ckt.Nets {
		if !live[i] {
			remap[i] = -1
			continue
		}
		m := n
		if len(n.Args) > 0 {
			m.Args = make([]int, len(n.Args))
			for j, a := range n.Args {
				m.Args[j] = remap[a]
			}
		}
		remap[i] = len(nets)
		nets = append(nets, m)
	}
	out := &circuit.Circuit{Design: ckt.Design, Style: ckt.Style, Nets: nets}
	out.Next = make([]int, len(ckt.Next))
	for reg, ni := range ckt.Next {
		out.Next[reg] = remap[ni]
	}
	out.WillFire = make([]int, len(ckt.WillFire))
	for si, ni := range ckt.WillFire {
		out.WillFire[si] = remap[ni]
	}
	return out
}
