package netopt_test

import (
	"fmt"
	"testing"

	"cuttlego/internal/ast"
	"cuttlego/internal/bits"
	"cuttlego/internal/circuit"
	"cuttlego/internal/dsp"
	"cuttlego/internal/netopt"
	"cuttlego/internal/riscv"
	"cuttlego/internal/rvcore"
	"cuttlego/internal/stm"
	"cuttlego/internal/testkit"
	"cuttlego/internal/workload"
)

// shipped returns the designs the pipeline is measured on, compiled to
// circuits in the dynamic style.
func shipped(t *testing.T) map[string]*circuit.Circuit {
	t.Helper()
	out := make(map[string]*circuit.Circuit)
	add := func(name string, d *ast.Design) {
		ckt, err := circuit.Compile(d.MustCheck(), circuit.StyleKoika)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		out[name] = ckt
	}
	add("collatz", stm.Collatz(27))
	add("fir", dsp.FIR([]uint32{3, 1, 4, 1, 5}))
	add("fft", dsp.FFT(8))
	mem := riscv.NewMemory()
	mem.LoadWords(0, workload.Primes(50))
	d, _ := rvcore.Build(rvcore.RV32I(), mem)
	add("rv32i", d)
	return out
}

func TestReducesShippedDesigns(t *testing.T) {
	for name, ckt := range shipped(t) {
		res := netopt.Optimize(ckt, netopt.All())
		if res.After.Nets >= res.Before.Nets {
			t.Errorf("%s: netopt did not shrink the netlist (%d -> %d nets)",
				name, res.Before.Nets, res.After.Nets)
		}
		t.Logf("%s: %d -> %d nets", name, res.Before.Nets, res.After.Nets)
	}
}

func TestIdempotent(t *testing.T) {
	for name, ckt := range shipped(t) {
		once := netopt.Optimize(ckt, netopt.All())
		twice := netopt.Optimize(once.Circuit, netopt.All())
		if twice.After != twice.Before {
			t.Errorf("%s: second run changed stats: %+v -> %+v", name, twice.Before, twice.After)
		}
	}
}

func TestInputNotMutated(t *testing.T) {
	for name, ckt := range shipped(t) {
		before := ckt.Stats()
		netopt.Optimize(ckt, netopt.All())
		if got := ckt.Stats(); got != before {
			t.Errorf("%s: input circuit mutated: %+v -> %+v", name, before, got)
		}
	}
}

// TestTopologicalOrder verifies the invariant rtlsim's levelized plan
// relies on: every net's arguments precede it.
func TestTopologicalOrder(t *testing.T) {
	for name, ckt := range shipped(t) {
		opt := netopt.MustOptimize(ckt)
		for i, n := range opt.Nets {
			for _, a := range n.Args {
				if a >= i {
					t.Fatalf("%s: net %d references later net %d", name, i, a)
				}
			}
		}
	}
}

// TestExtCallsPinned: external calls may carry side effects, so DCE must
// keep them (and their argument cones) even when nothing consumes their
// results.
func TestExtCallsPinned(t *testing.T) {
	d := ast.NewDesign("sideeffect")
	d.Reg("x", ast.Bits(8), 1)
	d.ExtFun("probe", []int{8}, ast.Bits(8), func(a []bits.Bits) bits.Bits { return a[0] })
	d.Rule("r",
		ast.Let("ignored", ast.ExtCall("probe", ast.Add(ast.Rd0("x"), ast.C(8, 1))),
			ast.Wr0("x", ast.Add(ast.Rd0("x"), ast.C(8, 2)))))
	ckt, err := circuit.Compile(d.MustCheck(), circuit.StyleKoika)
	if err != nil {
		t.Fatal(err)
	}
	opt := netopt.MustOptimize(ckt)
	if s := opt.Stats(); s.ExtCalls != 1 {
		t.Errorf("ext call swept by DCE: %+v", s)
	}
}

func TestConstantFolding(t *testing.T) {
	// A rule computing over constants folds to a constant next-value mux.
	d := ast.NewDesign("fold")
	d.Reg("x", ast.Bits(8), 0)
	d.Rule("r", ast.Wr0("x", ast.Add(ast.C(8, 2), ast.Mul(ast.C(8, 3), ast.C(8, 4)))))
	ckt, err := circuit.Compile(d.MustCheck(), circuit.StyleKoika)
	if err != nil {
		t.Fatal(err)
	}
	opt := netopt.MustOptimize(ckt)
	if s := opt.Stats(); s.Binops != 0 {
		t.Errorf("constant arithmetic survived folding: %+v", s)
	}
	next := opt.Nets[opt.Next[0]]
	if next.Kind != circuit.NConst || next.Val != 14 {
		t.Errorf("next net = %+v, want constant 14", next)
	}
}

// TestRandomDesignsEquivalent drives optimized netlists of randomized
// designs against the raw ones through the interpreter-backed comparator.
func TestRandomDesignsEquivalent(t *testing.T) {
	for seed := int64(500); seed < 520; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			d := testkit.Random(seed).MustCheck()
			ckt, err := circuit.Compile(d, circuit.StyleKoika)
			if err != nil {
				t.Fatal(err)
			}
			res := netopt.Optimize(ckt, netopt.All())
			if res.After.Nets > res.Before.Nets {
				t.Errorf("netlist grew: %d -> %d", res.Before.Nets, res.After.Nets)
			}
		})
	}
}
