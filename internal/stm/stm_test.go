package stm_test

import (
	"testing"
	"testing/quick"

	"cuttlego/internal/interp"
	"cuttlego/internal/sim"
	"cuttlego/internal/stm"
)

func TestStepsGoldenValues(t *testing.T) {
	// Known Collatz trajectory lengths (counting each halving and each
	// 3x+1 step).
	cases := map[uint64]uint64{1: 0, 2: 1, 3: 7, 6: 8, 7: 16, 27: 111}
	for init, want := range cases {
		if got := stm.Steps(init); got != want {
			t.Errorf("Steps(%d) = %d, want %d", init, got, want)
		}
	}
}

func TestStepsZeroDoesNotLoop(t *testing.T) {
	if got := stm.Steps(0); got != 0 {
		t.Errorf("Steps(0) = %d", got)
	}
}

// Property: the design's steps counter matches the Go model for arbitrary
// starting values.
func TestQuickDesignMatchesModel(t *testing.T) {
	f := func(raw uint16) bool {
		init := uint64(raw)%2000 + 1
		d := stm.Collatz(init).MustCheck()
		s, err := interp.New(d)
		if err != nil {
			return false
		}
		for i := 0; i < 2000 && !s.Reg("done").Bool(); i++ {
			s.Cycle()
		}
		return s.Reg("done").Bool() && s.Reg("steps").Val == stm.Steps(init)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestDoneLatches(t *testing.T) {
	d := stm.Collatz(4).MustCheck()
	s, _ := interp.New(d)
	sim.Run(s, nil, 50)
	if !s.Reg("done").Bool() {
		t.Fatal("should be done")
	}
	x := s.Reg("x")
	sim.Run(s, nil, 50)
	if s.Reg("x") != x {
		t.Error("state must freeze after done latches")
	}
}
