// Package stm holds the trivial state-machine benchmark of Table 1: a
// Collatz stepper. Two rules, predicated on the parity of the state, update
// it through the two read/write ports so that a full even-then-odd step can
// retire in a single cycle — the structure of the paper's introductory
// two-state machine, with real data flowing through it.
package stm

import "cuttlego/internal/ast"

// Collatz builds the design: register x holds the current value; rule
// "divide" halves an even x at port 0; rule "multiply" maps an odd value
// (observed at port 1, after a same-cycle halving) to 3x+1 at port 1. The
// "steps" register counts rule commits; "done" latches when x reaches 1.
func Collatz(init uint64) *ast.Design {
	d := ast.NewDesign("collatz")
	d.Reg("x", ast.Bits(32), init)
	d.Reg("steps", ast.Bits(32), 0)
	d.Reg("done", ast.Bits(1), 0)

	d.Rule("divide",
		ast.Guard(ast.Eq(ast.Rd0("done"), ast.C(1, 0))),
		ast.Let("v", ast.Rd0("x"),
			ast.Guard(ast.Eq(ast.Slice(ast.V("v"), 0, 1), ast.C(1, 0))),
			ast.Guard(ast.Neq(ast.V("v"), ast.C(32, 0))),
			ast.Wr0("x", ast.Srl(ast.V("v"), ast.C(1, 1))),
			ast.Wr0("steps", ast.Add(ast.Rd0("steps"), ast.C(32, 1))),
		),
	)
	d.Rule("multiply",
		ast.Guard(ast.Eq(ast.Rd0("done"), ast.C(1, 0))),
		ast.Let("v", ast.Rd1("x"),
			ast.Guard(ast.Eq(ast.Slice(ast.V("v"), 0, 1), ast.C(1, 1))),
			ast.If(ast.Eq(ast.V("v"), ast.C(32, 1)),
				ast.Wr0("done", ast.C(1, 1)),
				ast.Seq(
					ast.Wr1("x", ast.Add(ast.Mul(ast.V("v"), ast.C(32, 3)), ast.C(32, 1))),
					ast.Wr1("steps", ast.Add(ast.Rd1("steps"), ast.C(32, 1))),
				)),
		),
	)
	return d
}

// Steps returns the number of Collatz rule applications needed to reach 1
// from init (the golden model for the design's "steps" counter).
func Steps(init uint64) uint64 {
	v := uint32(init)
	var n uint64
	for v != 1 && v != 0 {
		if v%2 == 0 {
			v /= 2
		} else {
			v = 3*v + 1
		}
		n++
	}
	return n
}
