package cover_test

import (
	"strings"
	"testing"

	"cuttlego/internal/ast"
	"cuttlego/internal/cover"
	"cuttlego/internal/cuttlesim"
	"cuttlego/internal/riscv"
	"cuttlego/internal/rvcore"
	"cuttlego/internal/sim"
	"cuttlego/internal/stm"
	"cuttlego/internal/workload"
)

func TestAnnotateCollatz(t *testing.T) {
	d := stm.Collatz(6).MustCheck()
	s := cuttlesim.MustNew(d, cuttlesim.Options{Level: cuttlesim.LStatic, Coverage: true})
	sim.Run(s, nil, 10)
	text := cover.Annotate(d, s.Coverage())
	if !strings.Contains(text, "rule divide:") {
		t.Fatalf("listing missing rule header:\n%s", text)
	}
	// Declarations have no counts; executed lines have numbers.
	if !strings.Contains(text, "           -: register x") {
		t.Errorf("register line should be uncounted:\n%s", text)
	}
	if !strings.Contains(text, "          10: ") {
		t.Errorf("some line should have run 10 times:\n%s", text)
	}
}

func TestRuleCounts(t *testing.T) {
	d := stm.Collatz(7).MustCheck()
	s := cuttlesim.MustNew(d, cuttlesim.Options{Level: cuttlesim.LStatic, Coverage: true})
	sim.Run(s, nil, 25)
	rc := cover.RuleCounts(d, s.Coverage())
	if rc["divide"] != 25 || rc["multiply"] != 25 {
		t.Errorf("rule attempt counts = %v, want 25 each", rc)
	}
}

func TestFindHelpers(t *testing.T) {
	d := stm.Collatz(7).MustCheck()
	if w := cover.WritesTo(d, "x", "divide"); len(w) != 1 {
		t.Errorf("writes to x in divide = %d", len(w))
	}
	if w := cover.WritesTo(d, "x", ""); len(w) != 2 {
		t.Errorf("writes to x anywhere = %d", len(w))
	}
	if f := cover.FailSites(d, "divide"); len(f) != 3 {
		// done guard, parity guard, zero guard
		t.Errorf("fail sites in divide = %d", len(f))
	}
}

// TestCaseStudy4 reproduces the paper's branch-prediction exploration: run
// the same branch-heavy program on the baseline (pc+4) and predicting (bp)
// cores with coverage on, read the misprediction count off the redirect
// write inside the execute rule — no hardware counters added — and observe
// it drop dramatically.
func TestCaseStudy4(t *testing.T) {
	prog := workload.BranchHeavy(400)
	mispredictions := func(cfg rvcore.Config) (uint64, uint64) {
		mem := riscv.NewMemory()
		mem.LoadWords(0, prog)
		d, core := rvcore.Build(cfg, mem)
		d.MustCheck()
		s := cuttlesim.MustNew(d, cuttlesim.Options{Level: cuttlesim.LStatic, Coverage: true})
		if _, err := rvcore.RunProgram(s, rvcore.NewBench(core), 1_000_000); err != nil {
			t.Fatal(err)
		}
		// The redirect is the write to pc inside the execute rule — the
		// paper's `if (nextPc != decoded.ppc) { WRITE0(pc, nextPc); ... }`.
		redirects := cover.WritesTo(d, core.PC, cfg.Prefix+"execute")
		if len(redirects) != 1 {
			t.Fatalf("expected 1 redirect site, found %d", len(redirects))
		}
		// Scoreboard stalls: the FAIL inside decode's hazard check.
		stalls := cover.FailSites(d, cfg.Prefix+"decode")
		return cover.Count(s.Coverage(), redirects), cover.Count(s.Coverage(), stalls)
	}
	baseMiss, baseStalls := mispredictions(rvcore.RV32I())
	bpMiss, bpStalls := mispredictions(rvcore.RV32IBP())
	if baseMiss == 0 {
		t.Fatal("baseline should mispredict on a branch-heavy program")
	}
	if bpMiss*2 >= baseMiss {
		t.Errorf("predictor should cut mispredictions at least in half: %d -> %d", baseMiss, bpMiss)
	}
	// The same run also exposes the decode-stall bottleneck (read-after-
	// write hazards) without any extra instrumentation.
	if baseStalls == 0 && bpStalls == 0 {
		t.Error("expected scoreboard stalls to be visible in coverage")
	}
}

func TestCountOverNodes(t *testing.T) {
	d := stm.Collatz(8).MustCheck()
	s := cuttlesim.MustNew(d, cuttlesim.Options{Level: cuttlesim.LStatic, Coverage: true})
	sim.Run(s, nil, 3) // 8 -> 4 -> 2 -> 1
	writes := cover.WritesTo(d, "x", "divide")
	if got := cover.Count(s.Coverage(), writes); got != 3 {
		t.Errorf("divide wrote x %d times, want 3", got)
	}
	var all []*ast.Node
	if got := cover.Count(s.Coverage(), all); got != 0 {
		t.Errorf("empty count = %d", got)
	}
}
