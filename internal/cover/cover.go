// Package cover turns Cuttlesim's per-node execution counters into
// Gcov-style annotated listings of the design source. Because the model
// matches the source nearly line for line, these counts are architectural
// information for free: Case Study 4 reads branch-misprediction rates and
// scoreboard stalls straight out of an annotated listing, without adding a
// single hardware counter.
package cover

import (
	"fmt"
	"strings"

	"cuttlego/internal/ast"
)

// Annotate renders the design's pretty-printed source with per-line
// execution counts, in the style of gcov: "count: line". Lines with no
// anchored nodes show "-".
func Annotate(d *ast.Design, counts []uint64) string {
	listing := d.Print()
	var sb strings.Builder
	for i, line := range listing.Lines {
		n, ok := lineCount(listing.LineNodes[i], counts)
		if !ok {
			fmt.Fprintf(&sb, "%12s: %s\n", "-", line)
		} else {
			fmt.Fprintf(&sb, "%12d: %s\n", n, line)
		}
	}
	return sb.String()
}

// lineCount picks the count of the first node anchored on the line (the
// line's entry point, matching gcov's line counts).
func lineCount(ids []int, counts []uint64) (uint64, bool) {
	if len(ids) == 0 {
		return 0, false
	}
	id := ids[0]
	if id < 0 || id >= len(counts) {
		return 0, false
	}
	return counts[id], true
}

// RuleCounts summarizes per-rule attempt counts (the rule body's root node)
// for quick profiling: how often each rule was tried.
func RuleCounts(d *ast.Design, counts []uint64) map[string]uint64 {
	out := make(map[string]uint64, len(d.Rules))
	for i := range d.Rules {
		out[d.Rules[i].Name] = counts[d.Rules[i].Body.ID]
	}
	return out
}

// Find locates nodes matching a predicate, in evaluation order. Tests and
// case studies use it to anchor assertions on specific operations ("the
// write to pc inside the execute rule").
func Find(d *ast.Design, match func(rule string, n *ast.Node) bool) []*ast.Node {
	var out []*ast.Node
	for i := range d.Rules {
		rule := d.Rules[i].Name
		var walk func(n *ast.Node)
		walk = func(n *ast.Node) {
			if n == nil {
				return
			}
			if match(rule, n) {
				out = append(out, n)
			}
			walk(n.A)
			walk(n.B)
			walk(n.C)
			for _, it := range n.Items {
				walk(it)
			}
		}
		walk(d.Rules[i].Body)
	}
	return out
}

// WritesTo returns the write nodes targeting a register, optionally
// restricted to one rule ("" for any).
func WritesTo(d *ast.Design, reg, rule string) []*ast.Node {
	return Find(d, func(r string, n *ast.Node) bool {
		return n.Kind == ast.KWrite && n.Name == reg && (rule == "" || r == rule)
	})
}

// FailSites returns the abort nodes, optionally restricted to one rule.
func FailSites(d *ast.Design, rule string) []*ast.Node {
	return Find(d, func(r string, n *ast.Node) bool {
		return n.Kind == ast.KFail && (rule == "" || r == rule)
	})
}

// Count sums the counters of the given nodes.
func Count(counts []uint64, nodes []*ast.Node) uint64 {
	var total uint64
	for _, n := range nodes {
		total += counts[n.ID]
	}
	return total
}
