package interp_test

import (
	"fmt"
	"testing"

	"cuttlego/internal/ast"
	"cuttlego/internal/bits"
	"cuttlego/internal/interp"
	"cuttlego/internal/sim"
	"cuttlego/internal/testkit"
)

// TestORAATRefinement validates the central soundness property of the
// rule-based semantics (the "one-rule-at-a-time" illusion of §2.1): every
// cycle, in which several rules fire with intra-cycle communication through
// the ports, must compute exactly the state reached by executing the fired
// rules one per cycle, in schedule order, with no concurrency at all.
// Rules that aborted in the combined cycle simply do not appear in the
// sequential replay.
//
// This is checked dynamically on the conformance zoo and on randomized
// designs: the port discipline (rd0 < wr0 < rd1 < wr1 per register) is
// precisely what makes the property hold, so any bug in the log checks
// would surface here.
func TestORAATRefinement(t *testing.T) {
	check := func(t *testing.T, build func() *ast.Design, cycles int) {
		t.Helper()
		d := build().MustCheck()
		s, err := interp.New(d)
		if err != nil {
			t.Fatal(err)
		}
		for cycle := 0; cycle < cycles; cycle++ {
			start := s.Snapshot()
			s.Cycle()
			var fired []string
			for _, name := range d.Schedule {
				if s.RuleFired(name) {
					fired = append(fired, name)
				}
			}
			got := sim.StateOf(s)

			// Sequential replay: one fired rule per virtual cycle.
			want, err := replayOneAtATime(build, start, fired)
			if err != nil {
				t.Fatal(err)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("cycle %d (fired %v): register %s = %v concurrent, %v one-at-a-time",
						cycle, fired, d.Registers[i].Name, got[i], want[i])
				}
			}
		}
	}

	for _, entry := range testkit.Zoo() {
		entry := entry
		t.Run(entry.Name, func(t *testing.T) { check(t, entry.Build, 48) })
	}
	for seed := int64(500); seed < 540; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("rand%d", seed), func(t *testing.T) {
			check(t, func() *ast.Design { return testkit.Random(seed) }, 16)
		})
	}
}

// replayOneAtATime executes the given rules sequentially, each in its own
// cycle of a fresh single-rule machine, threading the state through.
func replayOneAtATime(build func() *ast.Design, start sim.Snapshot, fired []string) ([]bits.Bits, error) {
	state := start
	for _, rule := range fired {
		d := build()
		d.Schedule = []string{rule}
		if err := d.Check(); err != nil {
			return nil, err
		}
		e, err := interp.New(d)
		if err != nil {
			return nil, err
		}
		e.Restore(state)
		e.Cycle()
		if !e.RuleFired(rule) {
			return nil, fmt.Errorf("rule %s fired concurrently but not in isolation", rule)
		}
		state = e.Snapshot()
	}
	return state.Regs, nil
}
