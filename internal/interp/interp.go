// Package interp is the reference interpreter for Kôika designs: a direct,
// unoptimized transcription of the log-based one-rule-at-a-time semantics
// (the "naive model" of the paper's §3.1). It keeps three pieces of data —
// beginning-of-cycle register values, a cycle log, and a rule log, each log
// holding per-register read/write sets interleaved with data0/data1 fields —
// and implements every check exactly as the semantics state them.
//
// It is deliberately slow. Its role is to be obviously correct: every other
// pipeline in this module (the Cuttlesim optimization ladder, the circuit
// compiler plus RTL simulator) is tested for cycle-for-cycle equivalence
// against it.
package interp

import (
	"fmt"

	"cuttlego/internal/ast"
	"cuttlego/internal/bits"
	"cuttlego/internal/diag"
	"cuttlego/internal/sim"
)

// regLog is the per-register entry of a log: the read/write set plus the
// data written at each port. In the naive model data and flags are stored
// together — precisely the layout §3.2's first optimization splits apart.
type regLog struct {
	rd0, rd1, wr0, wr1 bool
	data0, data1       bits.Bits
}

// Simulator is the reference engine.
type Simulator struct {
	d     *ast.Design
	sched []int

	state    []bits.Bits // beginning-of-cycle register values
	cycleLog []regLog    // L
	ruleLog  []regLog    // ℓ

	cycle uint64
	fired []bool
}

var _ sim.Engine = (*Simulator)(nil)
var _ sim.Snapshotter = (*Simulator)(nil)

// New builds a reference simulator for a checked design.
func New(d *ast.Design) (_ *Simulator, err error) {
	defer diag.Guard("interp: build simulator", &err)
	if !d.Checked() {
		return nil, fmt.Errorf("interp: design %q is not checked", d.Name)
	}
	s := &Simulator{
		d:        d,
		sched:    d.ScheduledRules(),
		state:    make([]bits.Bits, len(d.Registers)),
		cycleLog: make([]regLog, len(d.Registers)),
		ruleLog:  make([]regLog, len(d.Registers)),
		fired:    make([]bool, len(d.Rules)),
	}
	for i, r := range d.Registers {
		s.state[i] = r.Init
	}
	return s, nil
}

// Design implements sim.Engine.
func (s *Simulator) Design() *ast.Design { return s.d }

// CycleCount implements sim.Engine.
func (s *Simulator) CycleCount() uint64 { return s.cycle }

// Reg implements sim.Engine.
func (s *Simulator) Reg(name string) bits.Bits { return s.state[s.d.RegIndex(name)] }

// SetReg implements sim.Engine.
func (s *Simulator) SetReg(name string, v bits.Bits) {
	i := s.d.RegIndex(name)
	if v.Width != s.state[i].Width {
		panic(fmt.Sprintf("interp: SetReg %s width %d != %d", name, v.Width, s.state[i].Width))
	}
	s.state[i] = v
}

// RuleFired implements sim.Engine.
func (s *Simulator) RuleFired(rule string) bool { return s.fired[s.d.RuleIndex(rule)] }

// Snapshot implements sim.Snapshotter.
func (s *Simulator) Snapshot() sim.Snapshot {
	regs := make([]bits.Bits, len(s.state))
	copy(regs, s.state)
	return sim.Snapshot{Cycle: s.cycle, Regs: regs}
}

// Restore implements sim.Snapshotter.
func (s *Simulator) Restore(snap sim.Snapshot) {
	copy(s.state, snap.Regs)
	s.cycle = snap.Cycle
	for i := range s.fired {
		s.fired[i] = false
	}
}

// Cycle implements sim.Engine: each cycle starts with an empty cycle log;
// rules execute one by one, each building a rule log that is appended to
// the cycle log on success and discarded on failure; at the end of the
// cycle the registers are updated from the accumulated cycle log.
func (s *Simulator) Cycle() {
	for i := range s.cycleLog {
		s.cycleLog[i] = regLog{}
	}
	for _, ri := range s.sched {
		for i := range s.ruleLog {
			s.ruleLog[i] = regLog{}
		}
		ok := s.eval(s.d.Rules[ri].Body, nil) != nil
		s.fired[ri] = ok
		if !ok {
			continue
		}
		// Commit: or the read-write sets together; pull written data over.
		for i := range s.cycleLog {
			l, r := &s.cycleLog[i], &s.ruleLog[i]
			l.rd0 = l.rd0 || r.rd0
			l.rd1 = l.rd1 || r.rd1
			if r.wr0 {
				l.wr0 = true
				l.data0 = r.data0
			}
			if r.wr1 {
				l.wr1 = true
				l.data1 = r.data1
			}
		}
	}
	// End of cycle: data1 wins over data0 wins over the old state.
	for i := range s.state {
		switch {
		case s.cycleLog[i].wr1:
			s.state[i] = s.cycleLog[i].data1
		case s.cycleLog[i].wr0:
			s.state[i] = s.cycleLog[i].data0
		}
	}
	s.cycle++
}

// env is the let-binding environment; Assign mutates entries in place.
type env struct {
	name string
	val  bits.Bits
	prev *env
}

func (e *env) find(name string) *env {
	for p := e; p != nil; p = p.prev {
		if p.name == name {
			return p
		}
	}
	panic("interp: unbound variable " + name + " (checker should have caught this)")
}

// eval evaluates a node. It returns nil when the rule aborts; otherwise a
// pointer to the node's value.
func (s *Simulator) eval(n *ast.Node, e *env) *bits.Bits {
	switch n.Kind {
	case ast.KConst:
		v := n.Val
		return &v

	case ast.KVar:
		v := e.find(n.Name).val
		return &v

	case ast.KLet:
		init := s.eval(n.A, e)
		if init == nil {
			return nil
		}
		return s.eval(n.B, &env{name: n.Name, val: *init, prev: e})

	case ast.KAssign:
		v := s.eval(n.A, e)
		if v == nil {
			return nil
		}
		e.find(n.Name).val = *v
		u := bits.Zero(0)
		return &u

	case ast.KSeq:
		var last *bits.Bits
		for _, it := range n.Items {
			last = s.eval(it, e)
			if last == nil {
				return nil
			}
		}
		return last

	case ast.KIf:
		c := s.eval(n.A, e)
		if c == nil {
			return nil
		}
		if c.Bool() {
			return s.eval(n.B, e)
		}
		if n.C == nil {
			u := bits.Zero(0)
			return &u
		}
		return s.eval(n.C, e)

	case ast.KRead:
		return s.read(s.d.RegIndex(n.Name), n.Port)

	case ast.KWrite:
		v := s.eval(n.A, e)
		if v == nil {
			return nil
		}
		return s.write(s.d.RegIndex(n.Name), n.Port, *v)

	case ast.KFail:
		return nil

	case ast.KUnop:
		a := s.eval(n.A, e)
		if a == nil {
			return nil
		}
		var v bits.Bits
		switch n.Op {
		case ast.OpNot:
			v = a.Not()
		case ast.OpSignExtend:
			v = a.SignExtend(n.Wid)
		case ast.OpZeroExtend:
			v = a.ZeroExtend(n.Wid)
		case ast.OpSlice:
			var err error
			if v, err = a.TryExtract(n.Lo, n.Wid); err != nil {
				diag.Invariantf("interp: slice", "checker passed a bad slice: %v", err)
			}
		}
		return &v

	case ast.KBinop:
		a := s.eval(n.A, e)
		if a == nil {
			return nil
		}
		b := s.eval(n.B, e)
		if b == nil {
			return nil
		}
		v := EvalBinop(n.Op, *a, *b)
		return &v

	case ast.KExtCall:
		args := make([]bits.Bits, len(n.Items))
		for i, it := range n.Items {
			a := s.eval(it, e)
			if a == nil {
				return nil
			}
			args[i] = *a
		}
		f := s.d.ExtFuns[s.d.ExtIndex(n.Name)]
		v := f.Fn(args)
		if v.Width != f.Ret.BitWidth() {
			panic(fmt.Sprintf("interp: extfun %s returned %d bits, want %d", n.Name, v.Width, f.Ret.BitWidth()))
		}
		return &v

	case ast.KField:
		a := s.eval(n.A, e)
		if a == nil {
			return nil
		}
		v, err := a.TryExtract(n.Lo, n.Wid)
		if err != nil {
			diag.Invariantf("interp: field", "checker passed a bad field slice: %v", err)
		}
		return &v

	case ast.KSetField:
		a := s.eval(n.A, e)
		if a == nil {
			return nil
		}
		b := s.eval(n.B, e)
		if b == nil {
			return nil
		}
		v := a.SetSlice(n.Lo, *b)
		return &v

	case ast.KPack:
		st := n.Ty.(*ast.StructType)
		out := bits.Zero(st.BitWidth())
		for i, it := range n.Items {
			fv := s.eval(it, e)
			if fv == nil {
				return nil
			}
			out = out.SetSlice(st.Offset(st.Fields[i].Name), *fv)
		}
		return &out

	case ast.KSwitch:
		scrut := s.eval(n.A, e)
		if scrut == nil {
			return nil
		}
		for i := 0; i+1 < len(n.Items); i += 2 {
			if n.Items[i].Val == *scrut {
				return s.eval(n.Items[i+1], e)
			}
		}
		return s.eval(n.C, e)
	}
	panic(fmt.Sprintf("interp: unknown node kind %v", n.Kind))
}

// read implements the paper's port semantics verbatim.
func (s *Simulator) read(reg int, port ast.Port) *bits.Bits {
	L, l := &s.cycleLog[reg], &s.ruleLog[reg]
	if port == ast.P0 {
		// A read at port 0 checks for writes at any port in the cycle log
		// and returns the beginning-of-cycle value of the register.
		if L.wr0 || L.wr1 {
			return nil
		}
		l.rd0 = true
		v := s.state[reg]
		return &v
	}
	// A read at port 1 checks for writes at port 1 in the cycle log and
	// returns the most recent write0 value from either log, falling back to
	// the beginning-of-cycle state.
	if L.wr1 {
		return nil
	}
	l.rd1 = true
	var v bits.Bits
	switch {
	case l.wr0:
		v = l.data0
	case L.wr0:
		v = L.data0
	default:
		v = s.state[reg]
	}
	return &v
}

// write implements the paper's port semantics verbatim.
func (s *Simulator) write(reg int, port ast.Port, v bits.Bits) *bits.Bits {
	L, l := &s.cycleLog[reg], &s.ruleLog[reg]
	if port == ast.P0 {
		// A write at port 0 checks for reads at port 1 and writes at port 0
		// or 1 in both logs.
		if L.rd1 || l.rd1 || L.wr0 || l.wr0 || L.wr1 || l.wr1 {
			return nil
		}
		l.wr0 = true
		l.data0 = v
	} else {
		// A write at port 1 checks for other writes at port 1 in both logs.
		if L.wr1 || l.wr1 {
			return nil
		}
		l.wr1 = true
		l.data1 = v
	}
	u := bits.Zero(0)
	return &u
}

// EvalBinop applies a binary operator to two values. It is shared with the
// other pipelines so that operator semantics live in exactly one place.
func EvalBinop(op ast.Op, a, b bits.Bits) bits.Bits {
	switch op {
	case ast.OpAdd:
		return a.Add(b)
	case ast.OpSub:
		return a.Sub(b)
	case ast.OpMul:
		return a.Mul(b)
	case ast.OpAnd:
		return a.And(b)
	case ast.OpOr:
		return a.Or(b)
	case ast.OpXor:
		return a.Xor(b)
	case ast.OpEq:
		return a.Eq(b)
	case ast.OpNeq:
		return a.Neq(b)
	case ast.OpLtu:
		return a.Ltu(b)
	case ast.OpLts:
		return a.Lts(b)
	case ast.OpGeu:
		return a.Geu(b)
	case ast.OpGes:
		return a.Ges(b)
	case ast.OpSll:
		return a.Sll(b)
	case ast.OpSrl:
		return a.Srl(b)
	case ast.OpSra:
		return a.Sra(b)
	case ast.OpConcat:
		v, err := a.TryConcat(b)
		if err != nil {
			diag.Invariantf("interp: concat", "checker passed a bad concat: %v", err)
		}
		return v
	}
	panic(fmt.Sprintf("interp: unknown binop %v", op))
}
