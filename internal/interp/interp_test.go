package interp

import (
	"testing"

	"cuttlego/internal/ast"
	"cuttlego/internal/bits"
	"cuttlego/internal/sim"
)

func mustNew(t *testing.T, d *ast.Design) *Simulator {
	t.Helper()
	s, err := New(d.MustCheck())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestRequiresCheckedDesign(t *testing.T) {
	d := ast.NewDesign("d")
	if _, err := New(d); err == nil {
		t.Fatal("New accepted an unchecked design")
	}
}

// The paper's two-state machine: rlA fires in state A, rlB in state B.
func TestTwoStateMachine(t *testing.T) {
	d := ast.NewDesign("stm")
	st := ast.NewEnum("state", 1, "A", "B")
	d.Reg("st", st, 0)
	d.Reg("x", ast.Bits(32), 3)
	d.Rule("rlA",
		ast.Guard(ast.Eq(ast.Rd0("st"), ast.E(st, "A"))),
		ast.Wr0("st", ast.E(st, "B")),
		ast.Wr0("x", ast.Add(ast.Rd0("x"), ast.C(32, 10))),
	)
	d.Rule("rlB",
		ast.Guard(ast.Eq(ast.Rd0("st"), ast.E(st, "B"))),
		ast.Wr0("st", ast.E(st, "A")),
		ast.Wr0("x", ast.Mul(ast.Rd0("x"), ast.C(32, 2))),
	)
	s := mustNew(t, d)

	s.Cycle()
	if !s.RuleFired("rlA") || s.RuleFired("rlB") {
		t.Error("cycle 1: rlA should fire alone")
	}
	if got := s.Reg("x"); got != bits.New(32, 13) {
		t.Errorf("after rlA: x = %v", got)
	}
	s.Cycle()
	if s.RuleFired("rlA") || !s.RuleFired("rlB") {
		t.Error("cycle 2: rlB should fire alone")
	}
	if got := s.Reg("x"); got != bits.New(32, 26) {
		t.Errorf("after rlB: x = %v", got)
	}
	if s.CycleCount() != 2 {
		t.Errorf("cycle count = %d", s.CycleCount())
	}
}

// The Goldbergian contraption from §3.2: wr0(1); wr1(2); rd0(); rd1() in
// one rule succeeds, with rd0 seeing the initial value and rd1 seeing 1.
func TestGoldbergRule(t *testing.T) {
	d := ast.NewDesign("goldberg")
	d.Reg("r", ast.Bits(8), 0)
	d.Reg("saw0", ast.Bits(8), 0xff)
	d.Reg("saw1", ast.Bits(8), 0xff)
	d.Rule("rl",
		ast.Wr0("r", ast.C(8, 1)),
		ast.Wr1("r", ast.C(8, 2)),
		ast.Wr0("saw0", ast.Rd0("r")),
		ast.Wr0("saw1", ast.Rd1("r")),
	)
	s := mustNew(t, d)
	s.Cycle()
	if !s.RuleFired("rl") {
		t.Fatal("Goldberg rule should succeed")
	}
	if got := s.Reg("saw0"); got != bits.New(8, 0) {
		t.Errorf("rd0 observed %v, want initial 0", got)
	}
	if got := s.Reg("saw1"); got != bits.New(8, 1) {
		t.Errorf("rd1 observed %v, want write0 value 1", got)
	}
	if got := s.Reg("r"); got != bits.New(8, 2) {
		t.Errorf("end of cycle r = %v, want data1", got)
	}
}

func TestRead0FailsAfterEarlierWrite(t *testing.T) {
	for _, wr := range []func(string, *ast.Node) *ast.Node{ast.Wr0, ast.Wr1} {
		d := ast.NewDesign("d")
		d.Reg("r", ast.Bits(8), 5)
		d.Reg("out", ast.Bits(8), 0)
		d.Rule("writer", wr("r", ast.C(8, 9)))
		d.Rule("reader", ast.Wr0("out", ast.Rd0("r")))
		s := mustNew(t, d)
		s.Cycle()
		if s.RuleFired("reader") {
			t.Error("rd0 after a same-cycle write should abort the reader")
		}
		if got := s.Reg("out"); got != bits.New(8, 0) {
			t.Errorf("aborted rule leaked a write: out = %v", got)
		}
	}
}

func TestRead1SeesEarlierWrite0(t *testing.T) {
	d := ast.NewDesign("d")
	d.Reg("r", ast.Bits(8), 5)
	d.Reg("out", ast.Bits(8), 0)
	d.Rule("writer", ast.Wr0("r", ast.C(8, 9)))
	d.Rule("reader", ast.Wr0("out", ast.Rd1("r")))
	s := mustNew(t, d)
	s.Cycle()
	if !s.RuleFired("reader") {
		t.Fatal("reader should fire")
	}
	if got := s.Reg("out"); got != bits.New(8, 9) {
		t.Errorf("rd1 = %v, want forwarded 9", got)
	}
}

func TestRead1FallsBackToState(t *testing.T) {
	d := ast.NewDesign("d")
	d.Reg("r", ast.Bits(8), 5)
	d.Reg("out", ast.Bits(8), 0)
	d.Rule("reader", ast.Wr0("out", ast.Rd1("r")))
	s := mustNew(t, d)
	s.Cycle()
	if got := s.Reg("out"); got != bits.New(8, 5) {
		t.Errorf("rd1 with no writes = %v, want 5", got)
	}
}

func TestWrite0ConflictsWithEarlierRead1(t *testing.T) {
	d := ast.NewDesign("d")
	d.Reg("r", ast.Bits(8), 5)
	d.Reg("sink", ast.Bits(8), 0)
	d.Rule("reader", ast.Wr0("sink", ast.Rd1("r")))
	d.Rule("writer", ast.Wr0("r", ast.C(8, 9)))
	s := mustNew(t, d)
	s.Cycle()
	if s.RuleFired("writer") {
		t.Error("wr0 after a same-cycle rd1 should abort")
	}
	if got := s.Reg("r"); got != bits.New(8, 5) {
		t.Errorf("r = %v, want unchanged", got)
	}
}

func TestDoubleWriteConflicts(t *testing.T) {
	cases := []struct {
		name           string
		first, second  func(string, *ast.Node) *ast.Node
		secondMustFail bool
	}{
		{"wr0 then wr0", ast.Wr0, ast.Wr0, true},
		{"wr0 then wr1", ast.Wr0, ast.Wr1, false}, // wr1 after wr0 is legal
		{"wr1 then wr0", ast.Wr1, ast.Wr0, true},
		{"wr1 then wr1", ast.Wr1, ast.Wr1, true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			d := ast.NewDesign("d")
			d.Reg("r", ast.Bits(8), 0)
			d.Rule("first", c.first("r", ast.C(8, 1)))
			d.Rule("second", c.second("r", ast.C(8, 2)))
			s := mustNew(t, d)
			s.Cycle()
			if !s.RuleFired("first") {
				t.Fatal("first writer must fire")
			}
			if s.RuleFired("second") == c.secondMustFail {
				t.Errorf("second fired = %v, want %v", s.RuleFired("second"), !c.secondMustFail)
			}
		})
	}
}

func TestWrite1ThenWrite0WithinRuleFails(t *testing.T) {
	// Within a single rule: wr1 followed by wr0 violates port ordering.
	d := ast.NewDesign("d")
	d.Reg("r", ast.Bits(8), 0)
	d.Rule("rl", ast.Wr1("r", ast.C(8, 1)), ast.Wr0("r", ast.C(8, 2)))
	s := mustNew(t, d)
	s.Cycle()
	if s.RuleFired("rl") {
		t.Error("wr0 after wr1 in the same rule should abort")
	}
	if got := s.Reg("r"); got != bits.New(8, 0) {
		t.Errorf("r = %v, want untouched", got)
	}
}

func TestFailedRuleRollsBackEverything(t *testing.T) {
	d := ast.NewDesign("d")
	d.Reg("a", ast.Bits(8), 0)
	d.Reg("b", ast.Bits(8), 0)
	d.Rule("rl",
		ast.Wr0("a", ast.C(8, 1)),
		ast.Wr0("b", ast.C(8, 2)),
		ast.Fail(),
	)
	d.Rule("after", ast.Wr0("b", ast.C(8, 7)))
	s := mustNew(t, d)
	s.Cycle()
	if s.RuleFired("rl") {
		t.Error("rl should abort")
	}
	if !s.RuleFired("after") {
		t.Error("after should fire: rl's writes were discarded")
	}
	if a, b := s.Reg("a"), s.Reg("b"); a != bits.New(8, 0) || b != bits.New(8, 7) {
		t.Errorf("a=%v b=%v", a, b)
	}
}

func TestData1WinsAtCommit(t *testing.T) {
	d := ast.NewDesign("d")
	d.Reg("r", ast.Bits(8), 0)
	d.Rule("w0", ast.Wr0("r", ast.C(8, 1)))
	d.Rule("w1", ast.Wr1("r", ast.C(8, 2)))
	s := mustNew(t, d)
	s.Cycle()
	if got := s.Reg("r"); got != bits.New(8, 2) {
		t.Errorf("r = %v, want data1", got)
	}
}

func TestAssignUnderIf(t *testing.T) {
	d := ast.NewDesign("d")
	d.Reg("sel", ast.Bits(1), 1)
	d.Reg("out", ast.Bits(8), 0)
	d.Rule("rl",
		ast.Let("v", ast.C(8, 10),
			ast.When(ast.Eq(ast.Rd0("sel"), ast.C(1, 1)),
				ast.Set("v", ast.C(8, 42))),
			ast.Wr0("out", ast.V("v")),
		),
	)
	s := mustNew(t, d)
	s.Cycle()
	if got := s.Reg("out"); got != bits.New(8, 42) {
		t.Errorf("out = %v", got)
	}
	s.SetReg("sel", bits.New(1, 0))
	s.Cycle()
	if got := s.Reg("out"); got != bits.New(8, 10) {
		t.Errorf("out = %v after sel=0", got)
	}
}

func TestSwitchAndExtCall(t *testing.T) {
	d := ast.NewDesign("d")
	op := ast.NewEnum("op", 2, "Inc", "Dec", "Sq")
	d.Reg("o", op, 0)
	d.Reg("x", ast.Bits(8), 4)
	d.ExtFun("square", []int{8}, ast.Bits(8), func(a []bits.Bits) bits.Bits {
		return a[0].Mul(a[0])
	})
	d.Rule("rl", ast.Wr0("x", ast.Switch(ast.Rd0("o"), ast.Rd0("x"),
		ast.Case{Match: ast.E(op, "Inc"), Body: ast.Add(ast.Rd0("x"), ast.C(8, 1))},
		ast.Case{Match: ast.E(op, "Sq"), Body: ast.ExtCall("square", ast.Rd0("x"))},
	)))
	s := mustNew(t, d)
	s.Cycle()
	if got := s.Reg("x"); got != bits.New(8, 5) {
		t.Errorf("Inc: x = %v", got)
	}
	s.SetReg("o", op.Value("Sq"))
	s.Cycle()
	if got := s.Reg("x"); got != bits.New(8, 25) {
		t.Errorf("Sq: x = %v", got)
	}
	s.SetReg("o", op.Value("Dec")) // unhandled arm falls to default (no change)
	s.Cycle()
	if got := s.Reg("x"); got != bits.New(8, 25) {
		t.Errorf("default: x = %v", got)
	}
}

func TestStructOps(t *testing.T) {
	st := ast.NewStruct("req", ast.F("addr", ast.Bits(8)), ast.F("data", ast.Bits(8)))
	d := ast.NewDesign("d")
	d.RegB("req", st, st.PackValues(bits.New(8, 0x10), bits.New(8, 0x22)))
	d.Reg("addr", ast.Bits(8), 0)
	d.Rule("rl",
		ast.Let("r", ast.Rd0("req"),
			ast.Wr0("addr", ast.Field(ast.V("r"), "addr")),
			ast.Wr0("req", ast.SetField(ast.V("r"), "data", ast.C(8, 0x33))),
		),
	)
	s := mustNew(t, d)
	s.Cycle()
	if got := s.Reg("addr"); got != bits.New(8, 0x10) {
		t.Errorf("addr = %v", got)
	}
	want := st.PackValues(bits.New(8, 0x10), bits.New(8, 0x33))
	if got := s.Reg("req"); got != want {
		t.Errorf("req = %v, want %v", got, want)
	}
}

func TestPackEvaluation(t *testing.T) {
	st := ast.NewStruct("pair", ast.F("hi", ast.Bits(4)), ast.F("lo", ast.Bits(4)))
	d := ast.NewDesign("d")
	d.RegB("p", st, bits.Zero(8))
	d.Rule("rl", ast.Wr0("p", ast.Pack(st, ast.C(4, 0xa), ast.C(4, 0x5))))
	s := mustNew(t, d)
	s.Cycle()
	if got := s.Reg("p"); got != bits.New(8, 0xa5) {
		t.Errorf("p = %v", got)
	}
}

func TestSnapshotRestore(t *testing.T) {
	d := ast.NewDesign("d")
	d.Reg("x", ast.Bits(16), 0)
	d.Rule("inc", ast.Wr0("x", ast.Add(ast.Rd0("x"), ast.C(16, 1))))
	s := mustNew(t, d)
	sim.Run(s, nil, 5)
	snap := s.Snapshot()
	sim.Run(s, nil, 5)
	if got := s.Reg("x"); got != bits.New(16, 10) {
		t.Fatalf("x = %v", got)
	}
	s.Restore(snap)
	if got := s.Reg("x"); got != bits.New(16, 5) || s.CycleCount() != 5 {
		t.Errorf("restored x = %v cycle = %d", got, s.CycleCount())
	}
	sim.Run(s, nil, 5)
	if got := s.Reg("x"); got != bits.New(16, 10) {
		t.Errorf("replay diverged: x = %v", got)
	}
}

func TestRunStopsEarly(t *testing.T) {
	d := ast.NewDesign("d")
	d.Reg("x", ast.Bits(16), 0)
	d.Rule("inc", ast.Wr0("x", ast.Add(ast.Rd0("x"), ast.C(16, 1))))
	s := mustNew(t, d)
	n := sim.Run(s, stopAt{3}, 100)
	if n != 3 {
		t.Errorf("ran %d cycles, want 3", n)
	}
}

type stopAt struct{ n uint64 }

func (s stopAt) BeforeCycle(sim.Engine) {}
func (s stopAt) AfterCycle(e sim.Engine) bool {
	return e.CycleCount() < s.n
}
