package tracedb

import (
	"math"
	"strconv"
	"testing"

	"cuttlego/internal/bench"
	"cuttlego/internal/cuttlesim"
	"cuttlego/internal/debug"
	"cuttlego/internal/faultinj"
)

func TestParseQuery(t *testing.T) {
	cases := []struct {
		in   string
		want Query
		bad  bool
	}{
		{in: "first x.rd0() == 8'd3", want: Query{Mode: "first", Expr: "x.rd0() == 8'd3", To: math.MaxUint64}},
		{in: "last done.rd0() == 1'd1 in 10..500", want: Query{Mode: "last", Expr: "done.rd0() == 1'd1", From: 10, To: 500}},
		{in: "count x.rd0() == 8'd1", want: Query{Mode: "count", Expr: "x.rd0() == 8'd1", To: math.MaxUint64}},
		{in: "scan input.rd0() <u 8'd4 in 0..99", want: Query{Mode: "scan", Expr: "input.rd0() <u 8'd4", From: 0, To: 99}},
		{in: "  first   x.rd0() == 8'd3  ", want: Query{Mode: "first", Expr: "x.rd0() == 8'd3", To: math.MaxUint64}},
		{in: "nope x.rd0()", bad: true},
		{in: "first", bad: true},
		{in: "first  ", bad: true},
		{in: "first x.rd0() == 8'd1 in 9..3", bad: true},
		{in: "", bad: true},
	}
	for _, tc := range cases {
		got, err := ParseQuery(tc.in)
		if tc.bad {
			if err == nil {
				t.Errorf("ParseQuery(%q) accepted, want error", tc.in)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseQuery(%q): %v", tc.in, err)
			continue
		}
		if got != tc.want {
			t.Errorf("ParseQuery(%q) = %+v, want %+v", tc.in, got, tc.want)
		}
	}
}

// bruteForce evaluates the predicate over every recorded row by reading
// rows directly — the trusted oracle the indexed query engine must match.
func bruteForce(t *testing.T, r *Reader, catalog, expr string, from, to uint64) []uint64 {
	t.Helper()
	bm, _ := bench.Lookup(catalog)
	d := bm.New().Design
	eval, err := debug.CompileCondition(d, expr)
	if err != nil {
		t.Fatalf("CompileCondition: %v", err)
	}
	eng := &rowEngine{
		d:      d,
		widths: make([]int, len(r.meta.Signals)),
		idx:    make(map[string]int, len(r.meta.Signals)),
	}
	for i, s := range r.meta.Signals {
		eng.widths[i] = s.Width
		eng.idx[s.Name] = i
	}
	first, last, ok := r.Bounds()
	if !ok {
		t.Fatalf("empty recording")
	}
	if from > first {
		first = from
	}
	if to < last {
		last = to
	}
	var matches []uint64
	for cyc := first; cyc <= last; cyc++ {
		row, err := r.Row(cyc)
		if err != nil {
			t.Fatalf("Row(%d): %v", cyc, err)
		}
		eng.row = row
		eng.cycle = cyc
		if eval(eng) {
			matches = append(matches, cyc)
		}
	}
	return matches
}

func TestQueryModesMatchBruteForce(t *testing.T) {
	const cycles = 3000
	dir := recordCatalog(t, "collatz", cycles, 128)
	r, err := Open(dir, faultinj.OS())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	bm, _ := bench.Lookup("collatz")
	d := bm.New().Design
	exprs := []string{
		"x.rd0() == 32'd1",
		"x.rd0() <u 32'd10",
		"x.rd0() == 32'd27 & done.rd0() == 1'd0",
		"done.rd0() == 1'd1 | x.rd0() >=u 32'd1000",
	}
	windows := [][2]uint64{{0, math.MaxUint64}, {100, 2000}, {999, 999}, {2500, math.MaxUint64}}
	// Collatz register names: confirm against the design before querying.
	names := map[string]bool{}
	for _, reg := range d.Registers {
		names[reg.Name] = true
	}
	if !names["x"] {
		t.Skipf("collatz design registers changed: %v", d.Registers)
	}
	for _, expr := range exprs {
		for _, w := range windows {
			want := bruteForce(t, r, "collatz", expr, w[0], w[1])
			res, err := r.Query(d, Query{Mode: ModeCount, Expr: expr, From: w[0], To: w[1]})
			if err != nil {
				t.Fatalf("count %q in %v: %v", expr, w, err)
			}
			if res.Count != uint64(len(want)) {
				t.Errorf("count %q in %v = %d, want %d", expr, w, res.Count, len(want))
			}
			res, err = r.Query(d, Query{Mode: ModeFirst, Expr: expr, From: w[0], To: w[1]})
			if err != nil {
				t.Fatalf("first: %v", err)
			}
			if res.Matched != (len(want) > 0) || (res.Matched && res.Cycle != want[0]) {
				t.Errorf("first %q in %v = %v/%d, want %v", expr, w, res.Matched, res.Cycle, want)
			}
			res, err = r.Query(d, Query{Mode: ModeLast, Expr: expr, From: w[0], To: w[1]})
			if err != nil {
				t.Fatalf("last: %v", err)
			}
			if res.Matched != (len(want) > 0) || (res.Matched && res.Cycle != want[len(want)-1]) {
				t.Errorf("last %q in %v = %v/%d, want %v", expr, w, res.Matched, res.Cycle, want)
			}
			res, err = r.Query(d, Query{Mode: ModeScan, Expr: expr, From: w[0], To: w[1], Limit: len(want) + 10})
			if err != nil {
				t.Fatalf("scan: %v", err)
			}
			if len(res.Matches) != len(want) {
				t.Errorf("scan %q in %v returned %d matches, want %d", expr, w, len(res.Matches), len(want))
			} else {
				for i := range want {
					if res.Matches[i] != want[i] {
						t.Errorf("scan %q match %d = %d, want %d", expr, i, res.Matches[i], want[i])
						break
					}
				}
			}
		}
	}
}

func TestQueryScanLimit(t *testing.T) {
	dir := recordCatalog(t, "collatz", 2000, 64)
	r, err := Open(dir, faultinj.OS())
	if err != nil {
		t.Fatal(err)
	}
	bm, _ := bench.Lookup("collatz")
	d := bm.New().Design
	res, err := r.Query(d, Query{Mode: ModeScan, Expr: "x.rd0() <u 32'd100000", To: math.MaxUint64, Limit: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) != 7 {
		t.Fatalf("limit 7 returned %d matches", len(res.Matches))
	}
}

func TestQueryRejectsWrongDesign(t *testing.T) {
	dir := recordCatalog(t, "collatz", 100, 64)
	r, err := Open(dir, faultinj.OS())
	if err != nil {
		t.Fatal(err)
	}
	_ = r
	bm, _ := bench.Lookup("fir")
	d := bm.New().Design
	if _, err := r.Query(d, Query{Mode: ModeFirst, Expr: "1'd1", To: math.MaxUint64}); err == nil {
		t.Fatalf("query with mismatched design accepted")
	}
}

func TestQueryRejectsEffectfulExpr(t *testing.T) {
	dir := recordCatalog(t, "collatz", 100, 64)
	r, err := Open(dir, faultinj.OS())
	if err != nil {
		t.Fatal(err)
	}
	bm, _ := bench.Lookup("collatz")
	d := bm.New().Design
	if _, err := r.Query(d, Query{Mode: ModeFirst, Expr: "x.wr0(32'd0)", To: math.MaxUint64}); err == nil {
		t.Fatalf("effectful query expression accepted")
	}
}

// TestFirstQueryRV32IFromIndex is the acceptance test: a `first` query over
// a 100k-cycle rv32i recording must answer from the index — equal to a
// linear re-simulation scan — while only decoding a sliver of the chunks.
func TestFirstQueryRV32IFromIndex(t *testing.T) {
	if testing.Short() {
		t.Skip("100k-cycle rv32i recording")
	}
	const cycles = 100_000
	const chunk = 1024
	bm, ok := bench.Lookup("rv32i")
	if !ok {
		t.Fatalf("no rv32i in the catalogue")
	}
	inst := bm.New()
	eng, err := cuttlesim.New(inst.Design, cuttlesim.Options{
		Level: cuttlesim.LStatic, Backend: cuttlesim.Closure, Profile: true,
	})
	if err != nil {
		t.Fatalf("cuttlesim.New: %v", err)
	}
	dir := t.TempDir() + "/trace"
	rec, err := Create(dir, faultinj.OS(), MetaFor(inst.Design, chunk))
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	recordRun(t, rec, eng, inst.Bench, cycles)
	if err := rec.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// instret counts retired instructions, monotonically: the chunk min/max
	// summaries alone identify the single chunk that can contain the match.
	const expr = "instret.rd0() == 32'd20000"
	r, err := Open(dir, faultinj.OS())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	res, err := r.Query(inst.Design, Query{Mode: ModeFirst, Expr: expr, To: math.MaxUint64})
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if !res.Matched {
		t.Fatalf("query found no match; recording last instret = %v", finalInstret(t, r))
	}
	total := len(r.Chunks())
	if res.ChunksScanned > 3 {
		t.Fatalf("query decoded %d of %d chunks — the index is not pruning", res.ChunksScanned, total)
	}
	if res.RowsEvaluated > 2*chunk {
		t.Fatalf("query evaluated %d rows for a point lookup", res.RowsEvaluated)
	}
	// A full-window count over the same monotonic signal must dispose of
	// nearly every chunk from the summaries alone.
	cres, err := r.Query(inst.Design, Query{Mode: ModeCount, Expr: expr, To: math.MaxUint64})
	if err != nil {
		t.Fatalf("count query: %v", err)
	}
	if cres.ChunksSkipped < total-3 {
		t.Fatalf("count query skipped only %d of %d chunks via the index", cres.ChunksSkipped, total)
	}
	if cres.ChunksScanned > 3 {
		t.Fatalf("count query decoded %d of %d chunks", cres.ChunksScanned, total)
	}

	// Linear re-simulation scan: fresh engine, step cycle by cycle, stop at
	// the first cycle where the same compiled condition holds.
	fresh := bm.New()
	eng2, err := cuttlesim.New(fresh.Design, cuttlesim.Options{
		Level: cuttlesim.LStatic, Backend: cuttlesim.Closure, Profile: true,
	})
	if err != nil {
		t.Fatalf("cuttlesim.New: %v", err)
	}
	cond, err := debug.CompileCondition(fresh.Design, expr)
	if err != nil {
		t.Fatalf("CompileCondition: %v", err)
	}
	tb := fresh.Bench
	want := uint64(math.MaxUint64)
	for cyc := uint64(0); cyc <= cycles; cyc++ {
		if cond(eng2) {
			want = cyc
			break
		}
		tb.BeforeCycle(eng2)
		eng2.Cycle()
		tb.AfterCycle(eng2)
	}
	if want == math.MaxUint64 {
		t.Fatalf("linear scan found no match in %d cycles", cycles)
	}
	if res.Cycle != want {
		t.Fatalf("indexed query = cycle %d, linear re-simulation = cycle %d", res.Cycle, want)
	}
}

func finalInstret(t *testing.T, r *Reader) uint64 {
	t.Helper()
	_, last, ok := r.Bounds()
	if !ok {
		return 0
	}
	row, err := r.Row(last)
	if err != nil {
		return 0
	}
	for i, s := range r.meta.Signals {
		if s.Name == "instret" {
			return row[i]
		}
	}
	return 0
}

func TestQueryConstChunkFastPath(t *testing.T) {
	// idle spends almost every cycle quiescent, so most chunks have a fully
	// unchanged read set for a register that moves rarely; the fast path
	// must answer those chunks without decoding them.
	dir := recordCatalog(t, "idle", 5000, 256)
	r, err := Open(dir, faultinj.OS())
	if err != nil {
		t.Fatal(err)
	}
	bm, _ := bench.Lookup("idle")
	d := bm.New().Design
	reg := d.Registers[0].Name
	w := d.Registers[0].Type.BitWidth()
	if w == 0 {
		t.Skipf("first idle register is zero-width")
	}
	expr := reg + ".rd0() == " + strconv.Itoa(w) + "'d0"
	res, err := r.Query(d, Query{Mode: ModeCount, Expr: expr, To: math.MaxUint64})
	if err != nil {
		t.Fatalf("Query(%q): %v", expr, err)
	}
	want := bruteForce(t, r, "idle", expr, 0, math.MaxUint64)
	if res.Count != uint64(len(want)) {
		t.Fatalf("count = %d, want %d", res.Count, len(want))
	}
}
