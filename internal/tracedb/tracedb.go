// Package tracedb is the indexed on-disk trace store behind the daemon's
// time-travel queries: sessions record every register's value each cycle
// into per-signal column chunks, and queries ("first cycle where
// cache.state == M and ack == 0", watch scans, run-vs-run diffs) answer
// from the chunk index instead of re-simulating.
//
// A recording is one directory:
//
//	meta.json     the schema: design name, signal names/widths (declaration
//	              order), chunk size — JSON, because humans read it
//	c<N>.ktrc     one chunk of consecutive cycles starting at cycle N,
//	              columnar per signal, CRC-32C trailed
//	index.ktix    the cycle index: every chunk's extent plus per-signal
//	              min/max/changed summaries, CRC-32C trailed
//
// The write discipline is the snapshot store's: temp file + fsync + rename
// + directory sync through a faultinj.FS, so a crash leaves either the old
// bytes or the new bytes, and anything that slips through (torn writes, bit
// rot) is caught by the checksum on load and quarantined (.corrupt rename)
// instead of ever being served as a wrong answer. The index is rewritten
// after its chunks land, so the index always describes rows that are
// durably on disk — a chunk file holding more rows than the index credits
// is a crash between the two writes, and the extra rows are simply not
// visible until the recorder re-lands them.
package tracedb

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"cuttlego/internal/ast"
	"cuttlego/internal/faultinj"
)

const (
	chunkMagic = "KTRC"
	indexMagic = "KTIX"
	formatVer  = 1
	crcLen     = 4

	// DefaultChunkCycles is the default chunk extent. 1024 keeps chunk
	// files small enough to decode in microseconds while making the index
	// three orders of magnitude smaller than the data.
	DefaultChunkCycles = 1024

	// maxSignals and maxChunkRows bound decoding so corrupt or adversarial
	// files cannot demand unbounded allocations.
	maxSignals   = 1 << 20
	maxChunkRows = 1 << 22
)

// ErrCorrupt marks every trace decode failure — truncation, bad magic,
// checksum mismatch, impossible counts — so callers can distinguish "the
// bytes are bad" (quarantine, never trust) from I/O errors.
var ErrCorrupt = errors.New("tracedb: corrupt")

// ErrGap reports an Append whose cycle is not contiguous with the
// recording (a restore jumped past the recorded end); the recording can no
// longer represent a gap-free cycle axis and must stop or truncate.
var ErrGap = errors.New("tracedb: append is not contiguous with the recording")

// ErrNoTrace reports a directory that holds no recording.
var ErrNoTrace = errors.New("tracedb: no recording")

var crcTable = crc32.MakeTable(crc32.Castagnoli)

func corruptf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
}

// Signal is one recorded wire: a register of the design, in declaration
// order.
type Signal struct {
	Name  string `json:"name"`
	Width int    `json:"width"`
}

// Meta is a recording's schema, persisted as meta.json.
type Meta struct {
	Version     int      `json:"version"`
	Design      string   `json:"design"`
	ChunkCycles uint64   `json:"chunk_cycles"`
	Signals     []Signal `json:"signals"`
}

// MetaFor builds the recording schema of a design: every register, in
// declaration order, so recorded rows restore straight into engines and
// snapshots without reordering.
func MetaFor(d *ast.Design, chunkCycles uint64) Meta {
	if chunkCycles == 0 {
		chunkCycles = DefaultChunkCycles
	}
	m := Meta{Version: formatVer, Design: d.Name, ChunkCycles: chunkCycles}
	for _, r := range d.Registers {
		m.Signals = append(m.Signals, Signal{Name: r.Name, Width: r.Type.BitWidth()})
	}
	return m
}

// CheckDesign verifies that a design matches the recording's schema, so a
// query compiled against the wrong design can never read misaligned
// columns.
func (m Meta) CheckDesign(d *ast.Design) error {
	if len(d.Registers) != len(m.Signals) {
		return fmt.Errorf("tracedb: design %q has %d registers, recording has %d signals",
			d.Name, len(d.Registers), len(m.Signals))
	}
	for i, r := range d.Registers {
		if s := m.Signals[i]; s.Name != r.Name || s.Width != r.Type.BitWidth() {
			return fmt.Errorf("tracedb: signal %d is %s[%d] in the recording but %s[%d] in design %q",
				i, s.Name, s.Width, r.Name, r.Type.BitWidth(), d.Name)
		}
	}
	return nil
}

// equal reports schema equality (diffs require it).
func (m Meta) equalSignals(o Meta) bool {
	if len(m.Signals) != len(o.Signals) {
		return false
	}
	for i, s := range m.Signals {
		if o.Signals[i] != s {
			return false
		}
	}
	return true
}

// SigSum is one signal's per-chunk summary: the value range and whether the
// value varies inside the chunk. For an unchanged signal Min == Max is the
// value itself, so a query whose read set is unchanged across a chunk is
// answered from the index without touching the chunk file.
type SigSum struct {
	Min, Max uint64
	Changed  bool
}

// ChunkInfo is one chunk's index entry.
type ChunkInfo struct {
	Start uint64 // first cycle in the chunk
	Count uint64 // consecutive cycles recorded
	Sums  []SigSum
}

func chunkFile(start uint64) string { return "c" + strconv.FormatUint(start, 10) + ".ktrc" }

// --- chunk encoding ---------------------------------------------------------

// Per-signal column encodings inside a chunk.
const (
	encConst = 0 // one value for every row
	encDense = 1 // one uvarint per row
)

// encodeChunk serializes count rows of columnar values starting at cycle
// start, returning the bytes and the per-signal summaries. Layout, little-
// endian:
//
//	0      4    magic "KTRC"
//	4      2    version
//	6      2    reserved (zero)
//	8      8    start cycle
//	16     4    row count
//	20     var  per signal: encoding byte, then 1 (const) or count (dense)
//	            uvarint values
//	end-4  4    CRC-32C of every preceding byte
func encodeChunk(start uint64, count int, cols [][]uint64) ([]byte, []SigSum) {
	buf := make([]byte, 0, 20+8*len(cols))
	buf = append(buf, chunkMagic...)
	buf = binary.LittleEndian.AppendUint16(buf, formatVer)
	buf = binary.LittleEndian.AppendUint16(buf, 0)
	buf = binary.LittleEndian.AppendUint64(buf, start)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(count))
	sums := make([]SigSum, len(cols))
	for s, col := range cols {
		col = col[:count]
		sum := SigSum{Min: col[0], Max: col[0]}
		for _, v := range col[1:] {
			if v < sum.Min {
				sum.Min = v
			}
			if v > sum.Max {
				sum.Max = v
			}
		}
		sum.Changed = sum.Min != sum.Max
		sums[s] = sum
		if !sum.Changed {
			buf = append(buf, encConst)
			buf = binary.AppendUvarint(buf, col[0])
			continue
		}
		buf = append(buf, encDense)
		for _, v := range col {
			buf = binary.AppendUvarint(buf, v)
		}
	}
	return binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf, crcTable)), sums
}

// decodeChunk parses a chunk file. Every failure wraps ErrCorrupt.
func decodeChunk(data []byte, nsig int) (start uint64, cols [][]uint64, err error) {
	if len(data) < 20+crcLen {
		return 0, nil, corruptf("chunk truncated (%d bytes)", len(data))
	}
	if string(data[:4]) != chunkMagic {
		return 0, nil, corruptf("bad chunk magic %q", data[:4])
	}
	if v := binary.LittleEndian.Uint16(data[4:6]); v != formatVer {
		return 0, nil, corruptf("unsupported chunk version %d", v)
	}
	body := data[:len(data)-crcLen]
	want := binary.LittleEndian.Uint32(data[len(data)-crcLen:])
	if got := crc32.Checksum(body, crcTable); got != want {
		return 0, nil, corruptf("chunk checksum mismatch (stored %08x, computed %08x)", want, got)
	}
	start = binary.LittleEndian.Uint64(body[8:16])
	count := binary.LittleEndian.Uint32(body[16:20])
	if count == 0 || count > maxChunkRows {
		return 0, nil, corruptf("chunk row count %d out of range", count)
	}
	rest := body[20:]
	cols = make([][]uint64, nsig)
	for s := 0; s < nsig; s++ {
		if len(rest) == 0 {
			return 0, nil, corruptf("chunk signal %d missing", s)
		}
		enc := rest[0]
		rest = rest[1:]
		col := make([]uint64, count)
		switch enc {
		case encConst:
			v, n := binary.Uvarint(rest)
			if n <= 0 {
				return 0, nil, corruptf("chunk signal %d const malformed", s)
			}
			rest = rest[n:]
			for i := range col {
				col[i] = v
			}
		case encDense:
			for i := range col {
				v, n := binary.Uvarint(rest)
				if n <= 0 {
					return 0, nil, corruptf("chunk signal %d row %d malformed", s, i)
				}
				rest = rest[n:]
				col[i] = v
			}
		default:
			return 0, nil, corruptf("chunk signal %d has unknown encoding %d", s, enc)
		}
		cols[s] = col
	}
	if len(rest) != 0 {
		return 0, nil, corruptf("chunk has %d trailing bytes", len(rest))
	}
	return start, cols, nil
}

// --- index encoding ---------------------------------------------------------

// encodeIndex serializes the cycle index. Layout, little-endian: magic
// "KTIX", version, reserved, signal count (uvarint, must match meta), chunk
// count (uvarint), then per chunk: start, count, and per signal a flags
// byte (bit 0 = changed) plus min and max uvarints; CRC-32C trailer.
// Binary, not JSON: min/max are full 64-bit payloads and JSON numbers lose
// bits past 2^53.
func encodeIndex(nsig int, chunks []ChunkInfo) []byte {
	buf := make([]byte, 0, 16+len(chunks)*(4+nsig*4))
	buf = append(buf, indexMagic...)
	buf = binary.LittleEndian.AppendUint16(buf, formatVer)
	buf = binary.LittleEndian.AppendUint16(buf, 0)
	buf = binary.AppendUvarint(buf, uint64(nsig))
	buf = binary.AppendUvarint(buf, uint64(len(chunks)))
	for _, c := range chunks {
		buf = binary.AppendUvarint(buf, c.Start)
		buf = binary.AppendUvarint(buf, c.Count)
		for _, s := range c.Sums {
			var flags byte
			if s.Changed {
				flags = 1
			}
			buf = append(buf, flags)
			buf = binary.AppendUvarint(buf, s.Min)
			buf = binary.AppendUvarint(buf, s.Max)
		}
	}
	return binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf, crcTable))
}

func decodeIndex(data []byte, nsig int) ([]ChunkInfo, error) {
	if len(data) < 8+crcLen {
		return nil, corruptf("index truncated (%d bytes)", len(data))
	}
	if string(data[:4]) != indexMagic {
		return nil, corruptf("bad index magic %q", data[:4])
	}
	if v := binary.LittleEndian.Uint16(data[4:6]); v != formatVer {
		return nil, corruptf("unsupported index version %d", v)
	}
	body := data[:len(data)-crcLen]
	want := binary.LittleEndian.Uint32(data[len(data)-crcLen:])
	if got := crc32.Checksum(body, crcTable); got != want {
		return nil, corruptf("index checksum mismatch (stored %08x, computed %08x)", want, got)
	}
	rest := body[8:]
	uv := func(what string) (uint64, error) {
		v, n := binary.Uvarint(rest)
		if n <= 0 {
			return 0, corruptf("index %s malformed", what)
		}
		rest = rest[n:]
		return v, nil
	}
	gotSig, err := uv("signal count")
	if err != nil {
		return nil, err
	}
	if int(gotSig) != nsig {
		return nil, corruptf("index describes %d signals, meta has %d", gotSig, nsig)
	}
	nchunks, err := uv("chunk count")
	if err != nil {
		return nil, err
	}
	if nchunks > maxChunkRows {
		return nil, corruptf("index chunk count %d out of range", nchunks)
	}
	chunks := make([]ChunkInfo, 0, nchunks)
	for i := uint64(0); i < nchunks; i++ {
		var c ChunkInfo
		if c.Start, err = uv("chunk start"); err != nil {
			return nil, err
		}
		if c.Count, err = uv("chunk rows"); err != nil {
			return nil, err
		}
		if c.Count == 0 || c.Count > maxChunkRows {
			return nil, corruptf("index chunk %d row count %d out of range", i, c.Count)
		}
		c.Sums = make([]SigSum, nsig)
		for s := 0; s < nsig; s++ {
			if len(rest) == 0 {
				return nil, corruptf("index chunk %d summary truncated", i)
			}
			flags := rest[0]
			rest = rest[1:]
			c.Sums[s].Changed = flags&1 != 0
			if c.Sums[s].Min, err = uv("summary min"); err != nil {
				return nil, err
			}
			if c.Sums[s].Max, err = uv("summary max"); err != nil {
				return nil, err
			}
		}
		chunks = append(chunks, c)
	}
	if len(rest) != 0 {
		return nil, corruptf("index has %d trailing bytes", len(rest))
	}
	return chunks, nil
}

// --- shared store plumbing --------------------------------------------------

// atomicWrite lands data crash-safely: temp + fsync + rename + dir sync,
// the same discipline the snapshot store uses (and the same faultinj hooks,
// so the durability tests tear these writes too).
func atomicWrite(fsys faultinj.FS, path string, data []byte) error {
	tmp := path + ".tmp"
	if err := fsys.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	if err := fsys.Rename(tmp, path); err != nil {
		return err
	}
	return fsys.SyncDir(filepath.Dir(path))
}

// quarantine renames a damaged file aside so it is never decoded again but
// stays on disk for forensics.
func quarantine(fsys faultinj.FS, path string) error {
	return fsys.Rename(path, path+".corrupt")
}

// loadState opens a recording directory: meta, then the index (rebuilt by
// scanning chunk files when missing or corrupt), then a contiguity check
// that drops anything unreachable. It never decodes chunk payloads unless
// the index is being rebuilt.
func loadState(dir string, fsys faultinj.FS) (Meta, []ChunkInfo, error) {
	var meta Meta
	metaBytes, err := fsys.ReadFile(filepath.Join(dir, "meta.json"))
	if err != nil {
		return meta, nil, fmt.Errorf("%w in %s", ErrNoTrace, dir)
	}
	if err := json.Unmarshal(metaBytes, &meta); err != nil {
		return meta, nil, corruptf("meta.json: %v", err)
	}
	if meta.Version != formatVer {
		return meta, nil, corruptf("unsupported recording version %d", meta.Version)
	}
	if len(meta.Signals) == 0 || len(meta.Signals) > maxSignals {
		return meta, nil, corruptf("meta declares %d signals", len(meta.Signals))
	}
	if meta.ChunkCycles == 0 || meta.ChunkCycles > maxChunkRows {
		return meta, nil, corruptf("meta chunk size %d out of range", meta.ChunkCycles)
	}
	// Leftover temp files are a crash mid-write; the rename never happened,
	// so they are garbage.
	if entries, err := fsys.ReadDir(dir); err == nil {
		for _, e := range entries {
			if strings.HasSuffix(e.Name(), ".tmp") {
				_ = fsys.Remove(filepath.Join(dir, e.Name()))
			}
		}
	}
	var chunks []ChunkInfo
	idxBytes, err := fsys.ReadFile(filepath.Join(dir, "index.ktix"))
	if err == nil {
		chunks, err = decodeIndex(idxBytes, len(meta.Signals))
		if err != nil {
			_ = quarantine(fsys, filepath.Join(dir, "index.ktix"))
			chunks = nil
		}
	}
	if chunks == nil {
		// No (usable) index: rebuild it by decoding every chunk file. Corrupt
		// chunks are quarantined here rather than discovered one query at a
		// time.
		chunks, err = rebuildIndex(dir, fsys, len(meta.Signals))
		if err != nil {
			return meta, nil, err
		}
	}
	chunks = contiguousPrefix(chunks)
	return meta, chunks, nil
}

// rebuildIndex scans the directory for chunk files and recomputes every
// summary, quarantining undecodable chunks.
func rebuildIndex(dir string, fsys faultinj.FS, nsig int) ([]ChunkInfo, error) {
	entries, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var starts []uint64
	for _, e := range entries {
		name := e.Name()
		rest, ok := strings.CutSuffix(name, ".ktrc")
		if !ok || !strings.HasPrefix(rest, "c") {
			continue
		}
		n, err := strconv.ParseUint(rest[1:], 10, 64)
		if err != nil {
			continue
		}
		starts = append(starts, n)
	}
	sort.Slice(starts, func(i, j int) bool { return starts[i] < starts[j] })
	var chunks []ChunkInfo
	for _, start := range starts {
		path := filepath.Join(dir, chunkFile(start))
		data, err := fsys.ReadFile(path)
		if err != nil {
			continue
		}
		gotStart, cols, err := decodeChunk(data, nsig)
		if err != nil || gotStart != start {
			_ = quarantine(fsys, path)
			continue
		}
		count := len(cols[0])
		_, sums := encodeChunk(start, count, cols)
		chunks = append(chunks, ChunkInfo{Start: start, Count: uint64(count), Sums: sums})
	}
	return chunks, nil
}

// contiguousPrefix keeps the longest gap-free prefix of chunks: a recording
// is a single unbroken cycle axis, so anything after a hole (a quarantined
// middle chunk) is unreachable and will be re-recorded.
func contiguousPrefix(chunks []ChunkInfo) []ChunkInfo {
	for i := 1; i < len(chunks); i++ {
		if chunks[i].Start != chunks[i-1].Start+chunks[i-1].Count {
			return chunks[:i]
		}
	}
	return chunks
}
