package tracedb

import (
	"fmt"
)

// DiffEntry is one signal whose value differs between two recordings at
// the compared cycle.
type DiffEntry struct {
	Signal string
	Width  int
	A, B   uint64
}

// sameSchema verifies two recordings describe the same signals; diffing
// anything else would compare unrelated columns.
func sameSchema(a, b *Reader) error {
	if !a.meta.equalSignals(b.meta) {
		return fmt.Errorf("tracedb: recordings have different schemas (%s: %d signals, %s: %d signals)",
			a.meta.Design, len(a.meta.Signals), b.meta.Design, len(b.meta.Signals))
	}
	return nil
}

// DiffAt compares the state of two recordings at one cycle and returns
// every differing signal (empty = identical).
func DiffAt(a, b *Reader, cycle uint64) ([]DiffEntry, error) {
	if err := sameSchema(a, b); err != nil {
		return nil, err
	}
	ra, err := a.Row(cycle)
	if err != nil {
		return nil, err
	}
	rb, err := b.Row(cycle)
	if err != nil {
		return nil, err
	}
	var out []DiffEntry
	for i, s := range a.meta.Signals {
		if ra[i] != rb[i] {
			out = append(out, DiffEntry{Signal: s.Name, Width: s.Width, A: ra[i], B: rb[i]})
		}
	}
	return out, nil
}

// FirstDivergence finds the earliest cycle in [from, to] (clamped to the
// overlap of both recordings) where the two runs disagree. It compares raw
// rows; the sequential chunk cache keeps this one decode per chunk per
// side.
func FirstDivergence(a, b *Reader, from, to uint64) (cycle uint64, diverged bool, err error) {
	if err := sameSchema(a, b); err != nil {
		return 0, false, err
	}
	af, al, aok := a.Bounds()
	bf, bl, bok := b.Bounds()
	if !aok || !bok {
		return 0, false, fmt.Errorf("tracedb: cannot diff an empty recording")
	}
	lo, hi := max(af, bf), min(al, bl)
	if from > lo {
		lo = from
	}
	if to < hi {
		hi = to
	}
	if lo > hi {
		return 0, false, fmt.Errorf("tracedb: recordings do not overlap in %d..%d", from, to)
	}
	for cyc := lo; cyc <= hi; cyc++ {
		ra, err := a.Row(cyc)
		if err != nil {
			return 0, false, err
		}
		rb, err := b.Row(cyc)
		if err != nil {
			return 0, false, err
		}
		for i := range ra {
			if ra[i] != rb[i] {
				return cyc, true, nil
			}
		}
	}
	return 0, false, nil
}
