package tracedb

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"cuttlego/internal/ast"
	"cuttlego/internal/bits"
	"cuttlego/internal/debug"
	"cuttlego/internal/lang"
	"cuttlego/internal/sim"
)

// Query modes.
const (
	ModeFirst = "first" // earliest matching cycle in the window
	ModeLast  = "last"  // latest matching cycle in the window
	ModeCount = "count" // number of matching cycles
	ModeScan  = "scan"  // every matching cycle, up to Limit
)

// DefaultScanLimit bounds scan results when the query doesn't.
const DefaultScanLimit = 1000

// Query is one time-travel question over a recording. Expr is a 1-bit
// effect-free predicate in the textual dialect (the same language
// conditional breakpoints use); the window [From, To] is inclusive and
// defaults to the whole recording.
type Query struct {
	Mode  string
	Expr  string
	From  uint64
	To    uint64 // inclusive; math.MaxUint64 (or 0 with From 0 via ParseQuery default) = end
	Limit int    // scan mode: max matches returned; 0 = DefaultScanLimit
}

// Result is a query's answer plus the work accounting that proves it came
// from the index: ChunksSkipped counts chunks disposed of by summaries
// alone, RowsEvaluated counts predicate evaluations actually performed.
type Result struct {
	Matched bool     // first/last: a matching cycle exists
	Cycle   uint64   // first/last: the matching cycle
	Count   uint64   // count: matching cycles in the window
	Matches []uint64 // scan: matching cycles, ascending, truncated at Limit

	ChunksScanned int    // chunk files decoded and row-scanned
	ChunksSkipped int    // chunks resolved from index summaries alone
	RowsEvaluated uint64 // predicate evaluations performed
}

// ParseQuery parses the one-line query syntax used by kdbg and DAP
// evaluate:
//
//	first|last|count|scan <expr> [in <from>..<to>]
//
// e.g. `first cache.state.rd0() == state::M in 0..50000`.
func ParseQuery(s string) (Query, error) {
	s = strings.TrimSpace(s)
	mode, rest, _ := strings.Cut(s, " ")
	switch mode {
	case ModeFirst, ModeLast, ModeCount, ModeScan:
	default:
		return Query{}, fmt.Errorf("tracedb: query must start with first, last, count, or scan (got %q)", mode)
	}
	q := Query{Mode: mode, To: math.MaxUint64}
	expr := strings.TrimSpace(rest)
	// A trailing " in A..B" clause is a cycle window. Scan from the right so
	// the expression itself may contain the word "in" inside identifiers.
	if i := strings.LastIndex(expr, " in "); i >= 0 {
		if from, to, ok := parseWindow(expr[i+4:]); ok {
			q.From, q.To = from, to
			expr = strings.TrimSpace(expr[:i])
		}
	}
	if expr == "" {
		return Query{}, fmt.Errorf("tracedb: query %q has no expression", s)
	}
	if q.To < q.From {
		return Query{}, fmt.Errorf("tracedb: query window %d..%d is empty", q.From, q.To)
	}
	q.Expr = expr
	return q, nil
}

func parseWindow(s string) (from, to uint64, ok bool) {
	a, b, found := strings.Cut(strings.TrimSpace(s), "..")
	if !found {
		return 0, 0, false
	}
	from, err1 := strconv.ParseUint(strings.TrimSpace(a), 10, 64)
	to, err2 := strconv.ParseUint(strings.TrimSpace(b), 10, 64)
	if err1 != nil || err2 != nil {
		return 0, 0, false
	}
	return from, to, true
}

func (q Query) String() string {
	w := ""
	if q.From != 0 || q.To != math.MaxUint64 {
		w = fmt.Sprintf(" in %d..%d", q.From, q.To)
	}
	return q.Mode + " " + q.Expr + w
}

// rowEngine adapts one recorded row to sim.Engine so predicates compiled
// by debug.CompileCondition evaluate against history exactly as they would
// against a live engine: the compiled closure only ever calls Reg.
type rowEngine struct {
	d      *ast.Design
	widths []int
	idx    map[string]int
	row    []uint64
	cycle  uint64
}

func (e *rowEngine) Design() *ast.Design { return e.d }
func (e *rowEngine) Cycle()              {}
func (e *rowEngine) Reg(name string) bits.Bits {
	i := e.idx[name]
	return bits.New(e.widths[i], e.row[i])
}
func (e *rowEngine) SetReg(string, bits.Bits) {}
func (e *rowEngine) CycleCount() uint64       { return e.cycle }
func (e *rowEngine) RuleFired(string) bool    { return false }

// constraint is one index-prunable conjunct of the predicate: a comparison
// between a signal read and a constant. A chunk whose [min, max] summary
// cannot satisfy every constraint cannot contain a match.
type constraint struct {
	sig int
	op  ast.Op
	c   uint64
	rev bool // constant on the left: c OP signal
}

func (ct constraint) admits(s SigSum) bool {
	if !ct.rev {
		switch ct.op {
		case ast.OpEq:
			return s.Min <= ct.c && ct.c <= s.Max
		case ast.OpNeq:
			return s.Changed || s.Min != ct.c
		case ast.OpLtu:
			return s.Min < ct.c
		case ast.OpGeu:
			return s.Max >= ct.c
		}
		return true
	}
	switch ct.op {
	case ast.OpEq:
		return s.Min <= ct.c && ct.c <= s.Max
	case ast.OpNeq:
		return s.Changed || s.Min != ct.c
	case ast.OpLtu: // c < signal
		return ct.c < s.Max
	case ast.OpGeu: // c >= signal
		return ct.c >= s.Min
	}
	return true
}

// compiled is a predicate prepared for one recording: the evaluator, the
// signals it reads, and its index-prunable constraints.
type compiled struct {
	eval        func(sim.Engine) bool
	reads       []int // signal indices the expression reads
	constraints []constraint
}

func (r *Reader) compile(d *ast.Design, expr string) (*compiled, error) {
	if err := r.meta.CheckDesign(d); err != nil {
		return nil, err
	}
	node, err := lang.ParseExpr(d, expr)
	if err != nil {
		return nil, err
	}
	eval, err := debug.CompileCondition(d, expr)
	if err != nil {
		return nil, err
	}
	idx := make(map[string]int, len(r.meta.Signals))
	for i, s := range r.meta.Signals {
		idx[s.Name] = i
	}
	c := &compiled{eval: eval}
	seen := make(map[int]bool)
	var walk func(n *ast.Node)
	walk = func(n *ast.Node) {
		if n == nil {
			return
		}
		if n.Kind == ast.KRead {
			if i, ok := idx[n.Name]; ok && !seen[i] {
				seen[i] = true
				c.reads = append(c.reads, i)
			}
		}
		walk(n.A)
		walk(n.B)
		walk(n.C)
		for _, it := range n.Items {
			walk(it)
		}
	}
	walk(node)
	// Decompose top-level conjunctions and keep every `signal OP constant`
	// conjunct as an index constraint. The predicate is still evaluated in
	// full on surviving rows; constraints only rule chunks out, so missing
	// one (an OR, a signed compare, an arithmetic subterm) costs scan time,
	// never correctness.
	var conj func(n *ast.Node)
	conj = func(n *ast.Node) {
		if n == nil {
			return
		}
		if n.Kind == ast.KBinop && n.Op == ast.OpAnd {
			conj(n.A)
			conj(n.B)
			return
		}
		if n.Kind != ast.KBinop {
			return
		}
		switch n.Op {
		case ast.OpEq, ast.OpNeq, ast.OpLtu, ast.OpGeu:
		default:
			return
		}
		if n.A.Kind == ast.KRead && n.B.Kind == ast.KConst {
			if i, ok := idx[n.A.Name]; ok {
				c.constraints = append(c.constraints, constraint{sig: i, op: n.Op, c: n.B.Val.Val})
			}
		} else if n.A.Kind == ast.KConst && n.B.Kind == ast.KRead {
			if i, ok := idx[n.B.Name]; ok {
				c.constraints = append(c.constraints, constraint{sig: i, op: n.Op, c: n.A.Val.Val, rev: true})
			}
		}
	}
	conj(node)
	return c, nil
}

// Query answers q against the recording. d must be the design the
// recording was made from (schema-checked). Chunks are ruled out by the
// index — constraint summaries first, then the all-read-signals-unchanged
// fast path which evaluates the predicate once per chunk instead of once
// per row — and only surviving chunks are decoded and row-scanned.
func (r *Reader) Query(d *ast.Design, q Query) (Result, error) {
	var res Result
	switch q.Mode {
	case ModeFirst, ModeLast, ModeCount, ModeScan:
	default:
		return res, fmt.Errorf("tracedb: unknown query mode %q", q.Mode)
	}
	if q.To < q.From {
		return res, fmt.Errorf("tracedb: query window %d..%d is empty", q.From, q.To)
	}
	limit := q.Limit
	if limit <= 0 {
		limit = DefaultScanLimit
	}
	pred, err := r.compile(d, q.Expr)
	if err != nil {
		return res, err
	}
	eng := &rowEngine{
		d:      d,
		widths: make([]int, len(r.meta.Signals)),
		idx:    make(map[string]int, len(r.meta.Signals)),
		row:    make([]uint64, len(r.meta.Signals)),
	}
	for i, s := range r.meta.Signals {
		eng.widths[i] = s.Width
		eng.idx[s.Name] = i
	}

	// evalConst answers the predicate for a chunk whose read set is
	// unchanged: build the one distinct row from the summaries and evaluate
	// it once.
	evalConst := func(c ChunkInfo) bool {
		for i := range eng.row {
			eng.row[i] = c.Sums[i].Min
		}
		eng.cycle = c.Start
		res.RowsEvaluated++
		return pred.eval(eng)
	}

	backward := q.Mode == ModeLast
	for ci := range r.chunks {
		i := ci
		if backward {
			i = len(r.chunks) - 1 - ci
		}
		c := r.chunks[i]
		last := c.Start + c.Count - 1
		if last < q.From || c.Start > q.To {
			continue
		}
		lo, hi := c.Start, last
		if q.From > lo {
			lo = q.From
		}
		if q.To < hi {
			hi = q.To
		}
		pruned := false
		for _, ct := range pred.constraints {
			if !ct.admits(c.Sums[ct.sig]) {
				pruned = true
				break
			}
		}
		if pruned {
			res.ChunksSkipped++
			continue
		}
		allConst := true
		for _, s := range pred.reads {
			if c.Sums[s].Changed {
				allConst = false
				break
			}
		}
		if allConst {
			res.ChunksSkipped++
			if !evalConst(c) {
				continue
			}
			// Every row in [lo, hi] matches.
			switch q.Mode {
			case ModeFirst:
				res.Matched, res.Cycle = true, lo
				return res, nil
			case ModeLast:
				res.Matched, res.Cycle = true, hi
				return res, nil
			case ModeCount:
				res.Count += hi - lo + 1
			case ModeScan:
				for cyc := lo; cyc <= hi && len(res.Matches) < limit; cyc++ {
					res.Matches = append(res.Matches, cyc)
				}
				if len(res.Matches) >= limit {
					return res, nil
				}
			}
			continue
		}
		cols, err := r.loadChunk(i)
		if err != nil {
			return res, err
		}
		res.ChunksScanned++
		evalRow := func(cyc uint64) bool {
			off := cyc - c.Start
			for s := range cols {
				eng.row[s] = cols[s][off]
			}
			eng.cycle = cyc
			res.RowsEvaluated++
			return pred.eval(eng)
		}
		if backward {
			for cyc := hi; ; cyc-- {
				if evalRow(cyc) {
					res.Matched, res.Cycle = true, cyc
					return res, nil
				}
				if cyc == lo {
					break
				}
			}
			continue
		}
		for cyc := lo; cyc <= hi; cyc++ {
			if !evalRow(cyc) {
				continue
			}
			switch q.Mode {
			case ModeFirst:
				res.Matched, res.Cycle = true, cyc
				return res, nil
			case ModeCount:
				res.Count++
			case ModeScan:
				res.Matches = append(res.Matches, cyc)
				if len(res.Matches) >= limit {
					return res, nil
				}
			}
		}
	}
	return res, nil
}
