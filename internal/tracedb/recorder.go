package tracedb

import (
	"encoding/json"
	"fmt"
	"path/filepath"

	"cuttlego/internal/faultinj"
)

// maxBufferedChunks bounds how many chunk extents of rows the recorder will
// hold in memory while the disk refuses writes before it gives up; past
// this the recorder errors out of Append and the caller must stop
// recording rather than grow without bound.
const maxBufferedChunks = 4

// A Recorder appends one row of register values per simulated cycle and
// lands them as column chunks. Rows must be contiguous: Append(c) requires
// c to be exactly one past the previous row (the first row may start
// anywhere — it captures the state at the cycle recording was enabled).
// It is not safe for concurrent use; the owning session serializes access.
type Recorder struct {
	dir  string
	fs   faultinj.FS
	meta Meta

	chunks   []ChunkInfo // chunks durably on disk and visible in the index
	cols     [][]uint64  // buffered rows, columnar, not yet closed as a chunk
	bufStart uint64      // cycle of the first buffered row
	onDisk   int         // buffered rows already landed as the tail chunk
	next     uint64      // next expected cycle; meaningful only when rows>0
	rows     uint64      // total recorded rows (disk + buffer)
}

// Create starts a fresh recording in dir, wiping any previous one.
func Create(dir string, fsys faultinj.FS, meta Meta) (*Recorder, error) {
	if meta.ChunkCycles == 0 {
		meta.ChunkCycles = DefaultChunkCycles
	}
	if meta.Version == 0 {
		meta.Version = formatVer
	}
	if len(meta.Signals) == 0 {
		return nil, fmt.Errorf("tracedb: recording needs at least one signal")
	}
	if err := fsys.RemoveAll(dir); err != nil {
		return nil, err
	}
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	metaBytes, err := json.Marshal(meta)
	if err != nil {
		return nil, err
	}
	if err := atomicWrite(fsys, filepath.Join(dir, "meta.json"), metaBytes); err != nil {
		return nil, err
	}
	r := &Recorder{dir: dir, fs: fsys, meta: meta}
	return r, r.writeIndex()
}

// Resume reopens an existing recording for appending, adopting the longest
// valid contiguous prefix on disk (quarantining anything corrupt) and
// positioning the recorder after its last row.
func Resume(dir string, fsys faultinj.FS) (*Recorder, error) {
	meta, chunks, err := loadState(dir, fsys)
	if err != nil {
		return nil, err
	}
	// Readers verify chunks lazily, but a recorder must never append after
	// damaged bytes: decode every adopted chunk now, quarantine the first
	// bad one, and truncate the recording there. Resumption is rare (a
	// restarted daemon, an explicit re-enable), so the full scan is cheap
	// insurance.
	valid := chunks[:0]
	for _, c := range chunks {
		path := filepath.Join(dir, chunkFile(c.Start))
		data, rerr := fsys.ReadFile(path)
		if rerr != nil {
			break
		}
		start, cols, derr := decodeChunk(data, len(meta.Signals))
		if derr != nil || start != c.Start || uint64(len(cols[0])) < c.Count {
			_ = quarantine(fsys, path)
			break
		}
		valid = append(valid, c)
	}
	// Chunk files beyond the adopted prefix are unreachable and would only
	// confuse a future index rebuild; drop them.
	for _, c := range chunks[len(valid):] {
		_ = fsys.Remove(filepath.Join(dir, chunkFile(c.Start)))
	}
	chunks = valid
	r := &Recorder{dir: dir, fs: fsys, meta: meta, chunks: chunks}
	for _, c := range chunks {
		r.rows += c.Count
	}
	if len(chunks) > 0 {
		last := chunks[len(chunks)-1]
		r.next = last.Start + last.Count
		r.bufStart = r.next
	}
	// The scan may have quarantined chunks or dropped a stale tail; rewrite
	// the index so disk state matches what we adopted.
	if err := r.writeIndex(); err != nil {
		return nil, err
	}
	return r, nil
}

// Meta returns the recording schema.
func (r *Recorder) Meta() Meta { return r.meta }

// Rows returns the total recorded row count (including buffered rows).
func (r *Recorder) Rows() uint64 { return r.rows }

// LastCycle returns the cycle of the most recent row.
func (r *Recorder) LastCycle() (uint64, bool) {
	if r.rows == 0 {
		return 0, false
	}
	return r.next - 1, true
}

// FirstCycle returns the cycle of the first row.
func (r *Recorder) FirstCycle() (uint64, bool) {
	if r.rows == 0 {
		return 0, false
	}
	if len(r.chunks) > 0 {
		return r.chunks[0].Start, true
	}
	return r.bufStart, true
}

// Append records the register values observed at cycle. vals must follow
// the schema's signal order; the slice is copied. A non-contiguous cycle
// returns ErrGap and records nothing.
func (r *Recorder) Append(cycle uint64, vals []uint64) error {
	if len(vals) != len(r.meta.Signals) {
		return fmt.Errorf("tracedb: row has %d values, schema has %d signals", len(vals), len(r.meta.Signals))
	}
	if r.rows > 0 && cycle != r.next {
		return fmt.Errorf("%w: cycle %d after %d", ErrGap, cycle, r.next-1)
	}
	if r.cols == nil {
		r.cols = make([][]uint64, len(r.meta.Signals))
	}
	if len(r.cols[0]) == 0 {
		r.bufStart = cycle
		r.onDisk = 0
	}
	for i, v := range vals {
		r.cols[i] = append(r.cols[i], v)
	}
	r.next = cycle + 1
	r.rows++
	buffered := uint64(len(r.cols[0]))
	if buffered >= r.meta.ChunkCycles && buffered%r.meta.ChunkCycles == 0 {
		// Chunk boundary: close the buffer as one chunk. A failed write keeps
		// the rows buffered and retries at the next boundary; a disk that
		// stays dead eventually exceeds the memory bound and Append errors.
		if err := r.closeBuffer(); err != nil {
			if buffered >= maxBufferedChunks*r.meta.ChunkCycles {
				return fmt.Errorf("tracedb: %d rows buffered and the store keeps failing: %w", buffered, err)
			}
		}
	}
	return nil
}

// closeBuffer lands every buffered row as one chunk and starts a new
// buffer. Chunks therefore normally hold ChunkCycles rows but may be
// shorter (a flushed tail) or longer (rows accumulated across a failed
// write) — readers only require contiguity, not uniform extent.
func (r *Recorder) closeBuffer() error {
	count := len(r.cols[0])
	if count == 0 {
		return nil
	}
	info, err := r.writeTail()
	if err != nil {
		return err
	}
	r.chunks = append(r.chunks, info)
	for i := range r.cols {
		r.cols[i] = r.cols[i][:0]
	}
	r.bufStart = r.next
	r.onDisk = 0
	return r.writeIndex()
}

// writeTail writes the current buffer as chunk file c<bufStart>.ktrc
// (overwriting any shorter version of itself from an earlier flush).
func (r *Recorder) writeTail() (ChunkInfo, error) {
	count := len(r.cols[0])
	data, sums := encodeChunk(r.bufStart, count, r.cols)
	if err := atomicWrite(r.fs, filepath.Join(r.dir, chunkFile(r.bufStart)), data); err != nil {
		return ChunkInfo{}, err
	}
	return ChunkInfo{Start: r.bufStart, Count: uint64(count), Sums: sums}, nil
}

func (r *Recorder) writeIndex() error {
	return atomicWrite(r.fs, filepath.Join(r.dir, "index.ktix"), encodeIndex(len(r.meta.Signals), r.chunks))
}

// Flush makes every recorded row visible to readers: the buffered tail is
// written as a (possibly partial) chunk and the index is rewritten to
// include it. The buffer keeps accumulating afterwards — the tail file is
// simply rewritten larger at the next flush or chunk boundary.
func (r *Recorder) Flush() error {
	if r.cols == nil || len(r.cols[0]) == 0 {
		return nil
	}
	if len(r.cols[0]) == r.onDisk {
		return nil
	}
	info, err := r.writeTail()
	if err != nil {
		return err
	}
	// The tail chunk joins the index without closing the buffer; drop any
	// previous (shorter) tail entry for the same start first.
	chunks := r.chunks
	if n := len(chunks); n > 0 && chunks[n-1].Start == info.Start {
		chunks = chunks[:n-1]
	}
	r.chunks = append(chunks, info)
	if err := r.writeIndex(); err != nil {
		return err
	}
	r.onDisk = len(r.cols[0])
	// Leave r.chunks holding the tail entry but remember it is still open:
	// closeBuffer replaces it when the buffer closes for real.
	r.tailOpen()
	return nil
}

// tailOpen marks that the last index entry is the still-growing buffer, so
// closeBuffer must replace rather than append it.
func (r *Recorder) tailOpen() {
	// Bookkeeping is positional: closeBuffer appends a chunk for bufStart;
	// if the index already ends with an entry for bufStart (a flushed tail)
	// it must be dropped first. Handled inline here by normalizing chunks so
	// closeBuffer can stay append-only.
	if n := len(r.chunks); n > 0 && len(r.cols) > 0 && len(r.cols[0]) > 0 && r.chunks[n-1].Start == r.bufStart {
		r.chunks = r.chunks[:n-1]
	}
}

// Truncate drops every row after cycle, so a session that rewound (restore
// or reverse) re-records the replayed cycles over a consistent prefix.
// Truncating before the first row resets the recording to empty.
func (r *Recorder) Truncate(cycle uint64) error {
	if r.rows == 0 {
		return nil
	}
	if cycle >= r.next-1 {
		return nil
	}
	first, _ := r.FirstCycle()
	if cycle < first {
		// Rewound past the start of the recording: empty it.
		for _, c := range r.chunks {
			_ = r.fs.Remove(filepath.Join(r.dir, chunkFile(c.Start)))
		}
		if len(r.cols) > 0 && len(r.cols[0]) > 0 {
			_ = r.fs.Remove(filepath.Join(r.dir, chunkFile(r.bufStart)))
		}
		r.chunks = nil
		r.cols = nil
		r.rows = 0
		r.next = 0
		r.onDisk = 0
		return r.writeIndex()
	}
	if len(r.cols) > 0 && len(r.cols[0]) > 0 && cycle >= r.bufStart {
		// The cut lands inside the buffer: shorten it in place.
		keep := int(cycle - r.bufStart + 1)
		for i := range r.cols {
			r.cols[i] = r.cols[i][:keep]
		}
		r.rows -= r.next - cycle - 1
		r.next = cycle + 1
		if r.onDisk > keep {
			r.onDisk = 0 // tail file on disk is now longer than the buffer; rewrite on next flush
			return r.Flush()
		}
		return nil
	}
	// The cut lands inside a closed chunk: reload that chunk's rows into the
	// buffer, drop it and everything after it from disk, and continue
	// recording from the cut.
	idx := -1
	for i, c := range r.chunks {
		if cycle >= c.Start && cycle < c.Start+c.Count {
			idx = i
			break
		}
	}
	if idx < 0 {
		return fmt.Errorf("tracedb: truncate cycle %d not covered by the recording", cycle)
	}
	cut := r.chunks[idx]
	path := filepath.Join(r.dir, chunkFile(cut.Start))
	data, err := r.fs.ReadFile(path)
	if err != nil {
		return err
	}
	start, cols, err := decodeChunk(data, len(r.meta.Signals))
	if err != nil || start != cut.Start {
		_ = quarantine(r.fs, path)
		return fmt.Errorf("tracedb: truncate into damaged chunk c%d: %w", cut.Start, err)
	}
	// Remove the buffered tail file (if flushed) and every chunk at or after
	// the cut point.
	if len(r.cols) > 0 && len(r.cols[0]) > 0 {
		_ = r.fs.Remove(filepath.Join(r.dir, chunkFile(r.bufStart)))
	}
	for _, c := range r.chunks[idx:] {
		_ = r.fs.Remove(filepath.Join(r.dir, chunkFile(c.Start)))
	}
	keep := int(cycle - cut.Start + 1)
	for i := range cols {
		cols[i] = cols[i][:keep]
	}
	r.chunks = r.chunks[:idx]
	r.cols = cols
	r.bufStart = cut.Start
	r.onDisk = 0
	r.next = cycle + 1
	r.rows = cycle - first + 1
	return r.Flush()
}

// Close flushes and releases the recorder.
func (r *Recorder) Close() error {
	return r.Flush()
}
