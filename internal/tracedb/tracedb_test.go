package tracedb

import (
	"bytes"
	"fmt"
	"path/filepath"
	"testing"

	"cuttlego/internal/bench"
	"cuttlego/internal/cuttlesim"
	"cuttlego/internal/faultinj"
	"cuttlego/internal/sim"
	"cuttlego/internal/vcd"
)

// newEngine builds the daemon's default engine for a catalogue design.
func newEngine(t *testing.T, catalog string) (sim.Engine, sim.Testbench) {
	t.Helper()
	bm, ok := bench.Lookup(catalog)
	if !ok {
		t.Fatalf("no catalogue design %q", catalog)
	}
	inst := bm.New()
	eng, err := cuttlesim.New(inst.Design, cuttlesim.Options{
		Level: cuttlesim.LStatic, Backend: cuttlesim.Closure, Profile: true,
	})
	if err != nil {
		t.Fatalf("cuttlesim.New: %v", err)
	}
	tb := inst.Bench
	if tb == nil {
		tb = sim.NopBench{}
	}
	return eng, tb
}

// sampleRow reads the engine's registers in declaration order.
func sampleRow(e sim.Engine, row []uint64) []uint64 {
	d := e.Design()
	if row == nil {
		row = make([]uint64, len(d.Registers))
	}
	for i, r := range d.Registers {
		row[i] = e.Reg(r.Name).Val
	}
	return row
}

// recordRun appends the engine's current state, then steps n cycles under
// the testbench appending after each — the same convention live sessions
// use (row c = beginning-of-cycle state at CycleCount() == c).
func recordRun(t *testing.T, rec *Recorder, e sim.Engine, tb sim.Testbench, n uint64) {
	t.Helper()
	if tb == nil {
		tb = sim.NopBench{}
	}
	if err := rec.Append(e.CycleCount(), sampleRow(e, nil)); err != nil {
		t.Fatalf("append cycle %d: %v", e.CycleCount(), err)
	}
	row := make([]uint64, len(e.Design().Registers))
	for i := uint64(0); i < n; i++ {
		tb.BeforeCycle(e)
		e.Cycle()
		cont := tb.AfterCycle(e)
		if err := rec.Append(e.CycleCount(), sampleRow(e, row)); err != nil {
			t.Fatalf("append cycle %d: %v", e.CycleCount(), err)
		}
		if !cont {
			break
		}
	}
}

// recordCatalog records n cycles of a catalogue design into a fresh
// recording and returns its directory.
func recordCatalog(t *testing.T, catalog string, n, chunk uint64) string {
	t.Helper()
	dir := filepath.Join(t.TempDir(), "trace")
	eng, tb := newEngine(t, catalog)
	rec, err := Create(dir, faultinj.OS(), MetaFor(eng.Design(), chunk))
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	recordRun(t, rec, eng, tb, n)
	if err := rec.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	return dir
}

func TestRecordAndReadBack(t *testing.T) {
	eng, tb := newEngine(t, "collatz")
	dir := filepath.Join(t.TempDir(), "trace")
	rec, err := Create(dir, faultinj.OS(), MetaFor(eng.Design(), 64))
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	// Remember every row as ground truth while recording it.
	var want [][]uint64
	want = append(want, sampleRow(eng, nil))
	if err := rec.Append(0, want[0]); err != nil {
		t.Fatalf("append: %v", err)
	}
	const n = 500
	for i := 0; i < n; i++ {
		tb.BeforeCycle(eng)
		eng.Cycle()
		tb.AfterCycle(eng)
		row := sampleRow(eng, nil)
		want = append(want, row)
		if err := rec.Append(eng.CycleCount(), row); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	if err := rec.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	r, err := Open(dir, faultinj.OS())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	first, last, ok := r.Bounds()
	if !ok || first != 0 || last != n {
		t.Fatalf("Bounds = %d..%d/%v, want 0..%d", first, last, ok, n)
	}
	for cyc := uint64(0); cyc <= n; cyc++ {
		row, err := r.Row(cyc)
		if err != nil {
			t.Fatalf("Row(%d): %v", cyc, err)
		}
		for s := range row {
			if row[s] != want[cyc][s] {
				t.Fatalf("cycle %d signal %d = %d, want %d", cyc, s, row[s], want[cyc][s])
			}
		}
	}
}

func TestAppendRejectsGaps(t *testing.T) {
	eng, _ := newEngine(t, "collatz")
	rec, err := Create(filepath.Join(t.TempDir(), "trace"), faultinj.OS(), MetaFor(eng.Design(), 64))
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	row := sampleRow(eng, nil)
	if err := rec.Append(10, row); err != nil {
		t.Fatalf("first append may start anywhere: %v", err)
	}
	if err := rec.Append(12, row); err == nil {
		t.Fatalf("gap append succeeded")
	}
	if err := rec.Append(11, row); err != nil {
		t.Fatalf("contiguous append after rejected gap: %v", err)
	}
}

func TestFlushMakesTailVisible(t *testing.T) {
	eng, tb := newEngine(t, "collatz")
	dir := filepath.Join(t.TempDir(), "trace")
	rec, err := Create(dir, faultinj.OS(), MetaFor(eng.Design(), 1024))
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	recordRun(t, rec, eng, tb, 100) // far below one chunk
	r, err := Open(dir, faultinj.OS())
	if err != nil {
		t.Fatalf("Open before flush: %v", err)
	}
	if _, _, ok := r.Bounds(); ok {
		t.Fatalf("unflushed rows visible to reader")
	}
	if err := rec.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	r, err = Open(dir, faultinj.OS())
	if err != nil {
		t.Fatalf("Open after flush: %v", err)
	}
	if first, last, ok := r.Bounds(); !ok || first != 0 || last != 100 {
		t.Fatalf("Bounds = %d..%d/%v, want 0..100", first, last, ok)
	}
	// Keep appending: the tail chunk must grow in place.
	row := make([]uint64, len(eng.Design().Registers))
	for i := 0; i < 50; i++ {
		tb.BeforeCycle(eng)
		eng.Cycle()
		tb.AfterCycle(eng)
		if err := rec.Append(eng.CycleCount(), sampleRow(eng, row)); err != nil {
			t.Fatalf("append after flush: %v", err)
		}
	}
	_ = rec.Close()
	r, err = Open(dir, faultinj.OS())
	if err != nil {
		t.Fatalf("Open after close: %v", err)
	}
	if _, last, _ := r.Bounds(); last != 150 {
		t.Fatalf("after growth last = %d, want 150", last)
	}
}

func TestResumeContinuesRecording(t *testing.T) {
	eng, tb := newEngine(t, "collatz")
	dir := filepath.Join(t.TempDir(), "trace")
	rec, err := Create(dir, faultinj.OS(), MetaFor(eng.Design(), 32))
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	recordRun(t, rec, eng, tb, 100)
	if err := rec.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	rec2, err := Resume(dir, faultinj.OS())
	if err != nil {
		t.Fatalf("Resume: %v", err)
	}
	if last, ok := rec2.LastCycle(); !ok || last != 100 {
		t.Fatalf("resumed LastCycle = %d/%v, want 100", last, ok)
	}
	// Continue the same run from cycle 101.
	row := make([]uint64, len(eng.Design().Registers))
	for i := 0; i < 50; i++ {
		tb.BeforeCycle(eng)
		eng.Cycle()
		tb.AfterCycle(eng)
		if err := rec2.Append(eng.CycleCount(), sampleRow(eng, row)); err != nil {
			t.Fatalf("append after resume: %v", err)
		}
	}
	if err := rec2.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	r, err := Open(dir, faultinj.OS())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if _, last, _ := r.Bounds(); last != 150 {
		t.Fatalf("resumed recording last = %d, want 150", last)
	}
}

func TestTruncateRewindsRecording(t *testing.T) {
	for _, cut := range []uint64{199, 150, 96, 64, 63, 10, 0} {
		t.Run(fmt.Sprintf("cut%d", cut), func(t *testing.T) {
			eng, tb := newEngine(t, "collatz")
			dir := filepath.Join(t.TempDir(), "trace")
			rec, err := Create(dir, faultinj.OS(), MetaFor(eng.Design(), 64))
			if err != nil {
				t.Fatalf("Create: %v", err)
			}
			var want [][]uint64
			want = append(want, sampleRow(eng, nil))
			_ = rec.Append(0, want[0])
			for i := 0; i < 200; i++ {
				tb.BeforeCycle(eng)
				eng.Cycle()
				tb.AfterCycle(eng)
				row := sampleRow(eng, nil)
				want = append(want, row)
				if err := rec.Append(eng.CycleCount(), row); err != nil {
					t.Fatalf("append: %v", err)
				}
			}
			if err := rec.Truncate(cut); err != nil {
				t.Fatalf("Truncate(%d): %v", cut, err)
			}
			if last, ok := rec.LastCycle(); !ok || last != cut {
				t.Fatalf("after truncate LastCycle = %d/%v, want %d", last, ok, cut)
			}
			// Re-record divergent rows from the cut, as a session replay would.
			row := make([]uint64, len(want[0]))
			for cyc := cut + 1; cyc <= 220; cyc++ {
				copy(row, want[cyc%uint64(len(want))])
				if err := rec.Append(cyc, row); err != nil {
					t.Fatalf("re-append %d: %v", cyc, err)
				}
			}
			if err := rec.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}
			r, err := Open(dir, faultinj.OS())
			if err != nil {
				t.Fatalf("Open: %v", err)
			}
			if first, last, ok := r.Bounds(); !ok || first != 0 || last != 220 {
				t.Fatalf("Bounds = %d..%d/%v, want 0..220", first, last, ok)
			}
			// Rows at and before the cut must be the original ones.
			got, err := r.Row(cut)
			if err != nil {
				t.Fatalf("Row(%d): %v", cut, err)
			}
			for s := range got {
				if got[s] != want[cut][s] {
					t.Fatalf("cycle %d signal %d = %d, want %d (pre-cut row damaged)", cut, s, got[s], want[cut][s])
				}
			}
		})
	}
}

func TestTruncateBeforeStartEmptiesRecording(t *testing.T) {
	eng, tb := newEngine(t, "collatz")
	dir := filepath.Join(t.TempDir(), "trace")
	rec, err := Create(dir, faultinj.OS(), MetaFor(eng.Design(), 16))
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	// Start recording mid-run at cycle 50.
	sim.Run(eng, tb, 50)
	recordRun(t, rec, eng, tb, 60)
	if err := rec.Truncate(10); err != nil {
		t.Fatalf("Truncate: %v", err)
	}
	if _, ok := rec.LastCycle(); ok {
		t.Fatalf("recording should be empty after truncating before its start")
	}
	// A fresh start at any cycle is allowed again.
	if err := rec.Append(10, sampleRow(eng, nil)); err != nil {
		t.Fatalf("append after reset: %v", err)
	}
	_ = rec.Close()
}

// TestVCDWindowByteEquality is the satellite-3 golden test: re-emitting any
// cycle window from the trace store must produce byte-for-byte the VCD a
// live engine streaming that same window would have produced.
func TestVCDWindowByteEquality(t *testing.T) {
	const total, from, to = 300, 120, 260
	dir := recordCatalog(t, "collatz", total, 64)
	r, err := Open(dir, faultinj.OS())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	var fromStore bytes.Buffer
	if err := r.WriteVCD(&fromStore, from, to); err != nil {
		t.Fatalf("WriteVCD: %v", err)
	}

	// Live reference: run a fresh engine to `from`, then stream while
	// stepping through `to`.
	eng, tb := newEngine(t, "collatz")
	if ran := sim.Run(eng, tb, from); ran != from {
		t.Fatalf("reference run stopped at %d", ran)
	}
	var live bytes.Buffer
	vw := vcd.New(&live, eng)
	if err := vw.Sample(); err != nil {
		t.Fatalf("Sample: %v", err)
	}
	for eng.CycleCount() < to {
		tb.BeforeCycle(eng)
		eng.Cycle()
		tb.AfterCycle(eng)
		if err := vw.Sample(); err != nil {
			t.Fatalf("Sample: %v", err)
		}
	}
	if !bytes.Equal(fromStore.Bytes(), live.Bytes()) {
		t.Fatalf("re-emitted VCD differs from live stream:\n--- store ---\n%s\n--- live ---\n%s",
			firstDiffContext(fromStore.String(), live.String()), "")
	}
}

// firstDiffContext trims two strings to the neighborhood of their first
// difference so failures stay readable.
func firstDiffContext(a, b string) string {
	i := 0
	for i < len(a) && i < len(b) && a[i] == b[i] {
		i++
	}
	lo := i - 120
	if lo < 0 {
		lo = 0
	}
	end := func(s string) int {
		if i+120 < len(s) {
			return i + 120
		}
		return len(s)
	}
	return fmt.Sprintf("store[%d:]: %q\nlive[%d:]: %q", lo, a[lo:end(a)], lo, b[lo:end(b)])
}

func TestDiffTwoRuns(t *testing.T) {
	// Same design, same run: no divergence.
	a := recordCatalog(t, "collatz", 200, 32)
	b := recordCatalog(t, "collatz", 200, 32)
	ra, err := Open(a, faultinj.OS())
	if err != nil {
		t.Fatal(err)
	}
	rb, err := Open(b, faultinj.OS())
	if err != nil {
		t.Fatal(err)
	}
	if cyc, div, err := FirstDivergence(ra, rb, 0, 200); err != nil || div {
		t.Fatalf("identical runs diverged at %d (err %v)", cyc, err)
	}
	if diffs, err := DiffAt(ra, rb, 137); err != nil || len(diffs) != 0 {
		t.Fatalf("identical runs differ at 137: %v (err %v)", diffs, err)
	}

	// Perturb one value mid-recording and re-record: divergence must land
	// exactly there.
	eng, tb := newEngine(t, "collatz")
	dir := filepath.Join(t.TempDir(), "trace")
	rec, err := Create(dir, faultinj.OS(), MetaFor(eng.Design(), 32))
	if err != nil {
		t.Fatal(err)
	}
	if err := rec.Append(0, sampleRow(eng, nil)); err != nil {
		t.Fatal(err)
	}
	row := make([]uint64, len(eng.Design().Registers))
	for i := 0; i < 200; i++ {
		tb.BeforeCycle(eng)
		eng.Cycle()
		tb.AfterCycle(eng)
		sampleRow(eng, row)
		if eng.CycleCount() == 150 {
			row[0] ^= 1
		}
		if err := rec.Append(eng.CycleCount(), row); err != nil {
			t.Fatal(err)
		}
	}
	_ = rec.Close()
	rc, err := Open(dir, faultinj.OS())
	if err != nil {
		t.Fatal(err)
	}
	cyc, div, err := FirstDivergence(ra, rc, 0, 200)
	if err != nil || !div || cyc != 150 {
		t.Fatalf("FirstDivergence = %d/%v (err %v), want 150", cyc, div, err)
	}
	diffs, err := DiffAt(ra, rc, 150)
	if err != nil || len(diffs) != 1 {
		t.Fatalf("DiffAt(150) = %v (err %v), want exactly one signal", diffs, err)
	}
}
