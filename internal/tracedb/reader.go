package tracedb

import (
	"fmt"
	"path/filepath"

	"cuttlego/internal/faultinj"
)

// A Reader answers queries over a recording's on-disk extent. It snapshots
// the index at Open, so a concurrently appending recorder never changes
// the rows a reader sees mid-query (chunk files are only ever replaced by
// atomic rename with a superset of their rows). Chunk payloads are decoded
// lazily, one chunk at a time, with a one-chunk cache for sequential scans.
type Reader struct {
	dir    string
	fs     faultinj.FS
	meta   Meta
	chunks []ChunkInfo

	cached     int // index into chunks of the cached decode, -1 if none
	cachedCols [][]uint64
}

// Open loads a recording's meta and index for querying. A missing or
// corrupt index is rebuilt from the chunk files (quarantining any that
// fail their checksum), so Open after a crash or bit-rot always yields the
// longest trustworthy prefix.
func Open(dir string, fsys faultinj.FS) (*Reader, error) {
	meta, chunks, err := loadState(dir, fsys)
	if err != nil {
		return nil, err
	}
	return &Reader{dir: dir, fs: fsys, meta: meta, chunks: chunks, cached: -1}, nil
}

// Meta returns the recording schema.
func (r *Reader) Meta() Meta { return r.meta }

// Chunks returns the index entries (shared slice; do not mutate).
func (r *Reader) Chunks() []ChunkInfo { return r.chunks }

// Bounds returns the first and last recorded cycle.
func (r *Reader) Bounds() (first, last uint64, ok bool) {
	if len(r.chunks) == 0 {
		return 0, 0, false
	}
	end := r.chunks[len(r.chunks)-1]
	return r.chunks[0].Start, end.Start + end.Count - 1, true
}

// loadChunk decodes chunk i, serving repeats from the one-chunk cache. A
// chunk whose bytes fail validation is quarantined and the error reported
// — a damaged chunk never silently yields values.
func (r *Reader) loadChunk(i int) ([][]uint64, error) {
	if r.cached == i {
		return r.cachedCols, nil
	}
	c := r.chunks[i]
	path := filepath.Join(r.dir, chunkFile(c.Start))
	data, err := r.fs.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("tracedb: chunk c%d: %w", c.Start, err)
	}
	start, cols, err := decodeChunk(data, len(r.meta.Signals))
	if err != nil {
		_ = quarantine(r.fs, path)
		return nil, fmt.Errorf("tracedb: chunk c%d quarantined: %w", c.Start, err)
	}
	if start != c.Start {
		_ = quarantine(r.fs, path)
		return nil, fmt.Errorf("tracedb: chunk c%d quarantined: %w", c.Start,
			corruptf("header says start %d", start))
	}
	if uint64(len(cols[0])) < c.Count {
		// The file holds fewer rows than the index credits: torn state.
		_ = quarantine(r.fs, path)
		return nil, fmt.Errorf("tracedb: chunk c%d quarantined: %w", c.Start,
			corruptf("has %d rows, index expects %d", len(cols[0]), c.Count))
	}
	// More rows than the index credits is a crash between chunk write and
	// index write; only the indexed prefix is visible.
	if uint64(len(cols[0])) > c.Count {
		for s := range cols {
			cols[s] = cols[s][:c.Count]
		}
	}
	r.cached, r.cachedCols = i, cols
	return cols, nil
}

// Row returns the register values recorded at cycle, in schema order.
func (r *Reader) Row(cycle uint64) ([]uint64, error) {
	i, ok := r.chunkAt(cycle)
	if !ok {
		return nil, fmt.Errorf("tracedb: cycle %d is outside the recording", cycle)
	}
	cols, err := r.loadChunk(i)
	if err != nil {
		return nil, err
	}
	row := make([]uint64, len(cols))
	off := cycle - r.chunks[i].Start
	for s := range cols {
		row[s] = cols[s][off]
	}
	return row, nil
}

// chunkAt finds the chunk covering cycle by binary search.
func (r *Reader) chunkAt(cycle uint64) (int, bool) {
	lo, hi := 0, len(r.chunks)
	for lo < hi {
		mid := (lo + hi) / 2
		c := r.chunks[mid]
		switch {
		case cycle < c.Start:
			hi = mid
		case cycle >= c.Start+c.Count:
			lo = mid + 1
		default:
			return mid, true
		}
	}
	return 0, false
}
