package tracedb

import (
	"testing"

	"cuttlego/internal/ast"
	"cuttlego/internal/debug"
)

// FuzzParseQuery throws arbitrary bytes at the query-string parser and, for
// anything it accepts, at the expression compiler against a small fixed
// design. Neither layer may panic; the compiler may only error.
func FuzzParseQuery(f *testing.F) {
	seeds := []string{
		"first x.rd0() == 8'd3",
		"last done.rd0() == 1'd1 in 10..500",
		"count x.rd0() == 8'd1 & done.rd0() == 1'd0",
		"scan x.rd0() <u 8'd4 in 0..99",
		"first x.rd0() >=u 8'd200 in 18446744073709551615..18446744073709551615",
		"first in in in 1..2",
		"first x.rd0() in 0..0",
		"count mux(done.rd0() == 1'd1, x.rd0(), 8'd0) == 8'd7",
		"scan ((((x.rd0()))))",
		"first \x00\xff",
		"last  in ..",
		"first x.rd0() == 8'd1 in 99999999999999999999..0",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	d := ast.NewDesign("fuzz")
	d.Reg("x", ast.Bits(8), 0)
	d.Reg("done", ast.Bits(1), 0)
	if err := d.Check(); err != nil {
		f.Fatalf("fuzz design: %v", err)
	}
	f.Fuzz(func(t *testing.T, s string) {
		if len(s) > 4096 {
			return
		}
		q, err := ParseQuery(s)
		if err != nil {
			return
		}
		if q.To < q.From {
			t.Fatalf("ParseQuery(%q) accepted an empty window %d..%d", s, q.From, q.To)
		}
		if q.Expr == "" {
			t.Fatalf("ParseQuery(%q) accepted an empty expression", s)
		}
		// The compiler must reject or accept without panicking; the parse
		// budget guards in lang already bound recursion.
		_, _ = debug.CompileCondition(d, q.Expr)
	})
}
