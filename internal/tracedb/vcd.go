package tracedb

import (
	"fmt"
	"io"

	"cuttlego/internal/bits"
	"cuttlego/internal/vcd"
)

// WriteVCD re-emits the recorded window [from, to] (inclusive, clamped to
// the recording) as a VCD dump. The bytes are identical to what live
// streaming would have produced over the same cycles: the first emitted
// cycle becomes the $dumpvars baseline and later cycles appear only when a
// signal changes.
func (r *Reader) WriteVCD(w io.Writer, from, to uint64) error {
	first, last, ok := r.Bounds()
	if !ok {
		return fmt.Errorf("tracedb: recording is empty")
	}
	if from < first {
		from = first
	}
	if to > last {
		to = last
	}
	if from > to {
		return fmt.Errorf("tracedb: window %d..%d is outside the recording (%d..%d)", from, to, first, last)
	}
	sigs := make([]vcd.Signal, len(r.meta.Signals))
	for i, s := range r.meta.Signals {
		sigs[i] = vcd.Signal{Name: s.Name, Width: s.Width}
	}
	sw := vcd.NewStream(w, r.meta.Design, sigs)
	for cyc := from; cyc <= to; cyc++ {
		i, _ := r.chunkAt(cyc)
		cols, err := r.loadChunk(i)
		if err != nil {
			return err
		}
		off := cyc - r.chunks[i].Start
		if err := sw.Sample(cyc, func(s int) bits.Bits {
			return bits.New(r.meta.Signals[s].Width, cols[s][off])
		}); err != nil {
			return err
		}
	}
	return nil
}
