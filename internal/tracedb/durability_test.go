package tracedb

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cuttlego/internal/bench"
	"cuttlego/internal/faultinj"
)

// corruptOneByte flips a byte in the middle of the named file.
func corruptOneByte(t *testing.T, path string) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatalf("rewrite %s: %v", path, err)
	}
}

func chunkFiles(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("ReadDir: %v", err)
	}
	var out []string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".ktrc") {
			out = append(out, filepath.Join(dir, e.Name()))
		}
	}
	return out
}

// TestCorruptChunkNeverWrongAnswer: flipping bits in a chunk must turn
// queries over that region into explicit errors (with the file
// quarantined), never into silently wrong results.
func TestCorruptChunkNeverWrongAnswer(t *testing.T) {
	dir := recordCatalog(t, "collatz", 1000, 64)
	files := chunkFiles(t, dir)
	if len(files) < 4 {
		t.Fatalf("expected several chunks, got %v", files)
	}
	victim := files[len(files)/2]
	corruptOneByte(t, victim)

	r, err := Open(dir, faultinj.OS())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	bm, _ := bench.Lookup("collatz")
	d := bm.New().Design
	// A scan across the whole recording must hit the damaged chunk and
	// error; a constraint-free predicate prevents index pruning from hiding
	// it. (tick is x: always-changing, so no const fast path either.)
	_, err = r.Query(d, Query{Mode: ModeCount, Expr: "x.rd0() >=u 32'd0", To: math.MaxUint64})
	if err == nil {
		t.Fatalf("query over a corrupt chunk returned an answer")
	}
	if _, statErr := os.Stat(victim + ".corrupt"); statErr != nil {
		t.Fatalf("corrupt chunk was not quarantined: %v", statErr)
	}
}

// TestCorruptChunkResumeAndReRecord: after quarantine, resuming the
// recording truncates to the valid prefix, the session re-records the lost
// cycles, and queries answer correctly again.
func TestCorruptChunkResumeAndReRecord(t *testing.T) {
	eng, tb := newEngine(t, "collatz")
	dir := filepath.Join(t.TempDir(), "trace")
	rec, err := Create(dir, faultinj.OS(), MetaFor(eng.Design(), 64))
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	recordRun(t, rec, eng, tb, 1000)
	if err := rec.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Damage a middle chunk, then resume: the recorder must adopt only the
	// prefix before the damage.
	files := chunkFiles(t, dir)
	victim := files[len(files)/2]
	corruptOneByte(t, victim)
	rec2, err := Resume(dir, faultinj.OS())
	if err != nil {
		t.Fatalf("Resume over damaged recording: %v", err)
	}
	last, ok := rec2.LastCycle()
	if !ok || last >= 1000 {
		t.Fatalf("resume did not truncate: last = %d/%v", last, ok)
	}
	if _, err := os.Stat(victim + ".corrupt"); err != nil {
		t.Fatalf("resume did not quarantine the damaged chunk: %v", err)
	}

	// Re-record the lost suffix by replaying a fresh deterministic run up to
	// 1000 and appending the cycles past the valid prefix.
	eng2, tb2 := newEngine(t, "collatz")
	row := make([]uint64, len(eng2.Design().Registers))
	for eng2.CycleCount() < 1000 {
		tb2.BeforeCycle(eng2)
		eng2.Cycle()
		tb2.AfterCycle(eng2)
		if eng2.CycleCount() <= last {
			continue
		}
		if err := rec2.Append(eng2.CycleCount(), sampleRow(eng2, row)); err != nil {
			t.Fatalf("re-record cycle %d: %v", eng2.CycleCount(), err)
		}
	}
	if err := rec2.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// The healed recording must answer queries identically to a clean one.
	r, err := Open(dir, faultinj.OS())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if _, lastNow, ok := r.Bounds(); !ok || lastNow != 1000 {
		t.Fatalf("healed recording bounds end at %d, want 1000", lastNow)
	}
	bm, _ := bench.Lookup("collatz")
	d := bm.New().Design
	want := bruteForce(t, r, "collatz", "x.rd0() == 32'd1", 0, math.MaxUint64)
	res, err := r.Query(d, Query{Mode: ModeCount, Expr: "x.rd0() == 32'd1", To: math.MaxUint64})
	if err != nil {
		t.Fatalf("Query after heal: %v", err)
	}
	if res.Count != uint64(len(want)) {
		t.Fatalf("healed count = %d, want %d", res.Count, len(want))
	}

	// And the healed rows must match an untouched recording of the same run.
	clean := recordCatalog(t, "collatz", 1000, 64)
	rc, err := Open(clean, faultinj.OS())
	if err != nil {
		t.Fatalf("Open clean: %v", err)
	}
	if cyc, div, err := FirstDivergence(r, rc, 0, 1000); err != nil || div {
		t.Fatalf("healed recording diverges from clean at %d (err %v)", cyc, err)
	}
}

// TestTornChunkWriteInvisible: a torn chunk write (power loss mid-write)
// must leave the recording serving its previous consistent prefix.
func TestTornChunkWriteInvisible(t *testing.T) {
	eng, tb := newEngine(t, "collatz")
	dir := filepath.Join(t.TempDir(), "trace")
	// Tear the 4th fs.write: meta, index at create, then chunk c0 at the
	// first boundary... locate it dynamically instead: tear every write
	// whose path is a chunk temp file by running with a generous rule set.
	inj := faultinj.New(1, faultinj.Rule{Op: "fs.write", Nth: 4, Kind: faultinj.Tear})
	ffs := faultinj.NewFS(faultinj.OS(), inj)
	rec, err := Create(dir, ffs, MetaFor(eng.Design(), 64))
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	recordRun(t, rec, eng, tb, 500)
	_ = rec.Close() // flush may or may not error; disk state decides below

	r, err := Open(dir, faultinj.OS())
	if err != nil {
		t.Fatalf("Open after torn write: %v", err)
	}
	first, last, ok := r.Bounds()
	if ok {
		// Whatever survived must be internally consistent and correct: every
		// visible row equals the deterministic replay.
		eng2, tb2 := newEngine(t, "collatz")
		row := make([]uint64, len(eng2.Design().Registers))
		for cyc := first; cyc <= last; cyc++ {
			for eng2.CycleCount() < cyc {
				tb2.BeforeCycle(eng2)
				eng2.Cycle()
				tb2.AfterCycle(eng2)
			}
			got, err := r.Row(cyc)
			if err != nil {
				t.Fatalf("Row(%d) over surviving prefix: %v", cyc, err)
			}
			sampleRow(eng2, row)
			for s := range got {
				if got[s] != row[s] {
					t.Fatalf("cycle %d signal %d = %d, replay says %d — torn write served wrong data",
						cyc, s, got[s], row[s])
				}
			}
		}
	}
}

// TestTornIndexWriteRebuilds: tearing the index leaves the chunks intact;
// Open must rebuild the index from them and lose nothing durable.
func TestTornIndexWriteRebuilds(t *testing.T) {
	dir := recordCatalog(t, "collatz", 500, 64)
	idx := filepath.Join(dir, "index.ktix")
	corruptOneByte(t, idx)
	r, err := Open(dir, faultinj.OS())
	if err != nil {
		t.Fatalf("Open with corrupt index: %v", err)
	}
	first, last, ok := r.Bounds()
	if !ok || first != 0 || last != 500 {
		t.Fatalf("rebuilt bounds = %d..%d/%v, want 0..500", first, last, ok)
	}
	if _, err := os.Stat(idx + ".corrupt"); err != nil {
		t.Fatalf("corrupt index not quarantined: %v", err)
	}
	// Spot-check a row against the deterministic replay.
	eng, tb := newEngine(t, "collatz")
	for eng.CycleCount() < 321 {
		tb.BeforeCycle(eng)
		eng.Cycle()
		tb.AfterCycle(eng)
	}
	got, err := r.Row(321)
	if err != nil {
		t.Fatalf("Row(321): %v", err)
	}
	want := sampleRow(eng, nil)
	for s := range got {
		if got[s] != want[s] {
			t.Fatalf("rebuilt row 321 signal %d = %d, want %d", s, got[s], want[s])
		}
	}
}

// TestRecorderSurvivesTransientWriteFaults: failed chunk writes must not
// drop rows — the recorder buffers and retries, and the final flush lands
// everything once the disk recovers.
func TestRecorderSurvivesTransientWriteFaults(t *testing.T) {
	eng, tb := newEngine(t, "collatz")
	dir := filepath.Join(t.TempDir(), "trace")
	// Fail two mid-recording chunk writes, then let everything succeed.
	inj := faultinj.New(1,
		faultinj.Rule{Op: "fs.write", Nth: 4, Kind: faultinj.Fail},
		faultinj.Rule{Op: "fs.write", Nth: 5, Kind: faultinj.Fail},
	)
	ffs := faultinj.NewFS(faultinj.OS(), inj)
	rec, err := Create(dir, ffs, MetaFor(eng.Design(), 32))
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	recordRun(t, rec, eng, tb, 400)
	if err := rec.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	r, err := Open(dir, faultinj.OS())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if first, last, ok := r.Bounds(); !ok || first != 0 || last != 400 {
		t.Fatalf("bounds = %d..%d/%v, want 0..400 despite transient faults", first, last, ok)
	}
}
