// scheduler-fuzz is Case Study 2: functional verification with scheduler
// randomization. A good rule-based design uses its scheduler for
// performance, never for correctness, so the rv32i core must compute the
// same architectural result under every rule order — only cycle counts may
// change.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"cuttlego/internal/cuttlesim"
	"cuttlego/internal/riscv"
	"cuttlego/internal/rvcore"
	"cuttlego/internal/workload"
)

func main() {
	prog := workload.Primes(60)
	want := workload.PrimesExpected(60)
	fmt.Printf("primes(60) ground truth: %d\n\n", want)
	fmt.Printf("%-36s %10s %10s %8s\n", "schedule", "tohost", "cycles", "IPC")

	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 10; trial++ {
		mem := riscv.NewMemory()
		mem.LoadWords(0, prog)
		d, core := rvcore.Build(rvcore.RV32I(), mem)
		orig := append([]string(nil), d.Schedule...)
		perm := r.Perm(len(orig))
		for i, j := range perm {
			d.Schedule[i] = orig[j]
		}
		if err := d.Check(); err != nil {
			log.Fatal(err)
		}
		s, err := cuttlesim.New(d, cuttlesim.DefaultOptions())
		if err != nil {
			log.Fatal(err)
		}
		res, err := rvcore.RunProgram(s, rvcore.NewBench(core), 10_000_000)
		if err != nil {
			log.Fatalf("schedule %v: %v", d.Schedule, err)
		}
		status := "ok"
		if res[0].ToHost != want {
			status = "WRONG RESULT"
		}
		fmt.Printf("%-36v %10d %10d %8.3f  %s\n",
			d.Schedule, res[0].ToHost, res[0].Cycles, res[0].IPC, status)
		if res[0].ToHost != want {
			log.Fatal("the design depends on its scheduler for functional correctness")
		}
	}
	fmt.Println("\nall schedules agree on the architectural result; the design is")
	fmt.Println("correct independently of rule ordering (cycle counts differ, as expected).")
}
