// scheduler-fuzz is Case Study 2: functional verification with scheduler
// randomization. A good rule-based design uses its scheduler for
// performance, never for correctness, so the rv32i core must compute the
// same architectural result under every rule order — only cycle counts may
// change.
//
// The trials are independent, so they fan out over bench.RunParallel's
// worker pool (one worker per CPU); the report is printed in trial order
// and is byte-identical to a sequential run.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"cuttlego/internal/bench"
	"cuttlego/internal/cuttlesim"
	"cuttlego/internal/riscv"
	"cuttlego/internal/rvcore"
	"cuttlego/internal/workload"
)

func main() {
	prog := workload.Primes(60)
	want := workload.PrimesExpected(60)
	fmt.Printf("primes(60) ground truth: %d\n\n", want)
	fmt.Printf("%-36s %10s %10s %8s\n", "schedule", "tohost", "cycles", "IPC")

	// Draw the schedule permutations up front so trial i's schedule does
	// not depend on how many workers run (the rand stream is shared).
	const trials = 10
	r := rand.New(rand.NewSource(1))
	var perms [][]int
	probe, _ := rvcore.Build(rvcore.RV32I(), riscv.NewMemory())
	for trial := 0; trial < trials; trial++ {
		perms = append(perms, r.Perm(len(probe.Schedule)))
	}

	type outcome struct {
		line string
		err  error
	}
	results := bench.RunParallel(trials, 0, func(trial int) outcome {
		mem := riscv.NewMemory()
		mem.LoadWords(0, prog)
		d, core := rvcore.Build(rvcore.RV32I(), mem)
		orig := append([]string(nil), d.Schedule...)
		for i, j := range perms[trial] {
			d.Schedule[i] = orig[j]
		}
		if err := d.Check(); err != nil {
			return outcome{err: err}
		}
		s, err := cuttlesim.New(d, cuttlesim.DefaultOptions())
		if err != nil {
			return outcome{err: err}
		}
		res, err := rvcore.RunProgram(s, rvcore.NewBench(core), 10_000_000)
		if err != nil {
			return outcome{err: fmt.Errorf("schedule %v: %w", d.Schedule, err)}
		}
		status := "ok"
		if res[0].ToHost != want {
			status = "WRONG RESULT"
		}
		line := fmt.Sprintf("%-36v %10d %10d %8.3f  %s",
			d.Schedule, res[0].ToHost, res[0].Cycles, res[0].IPC, status)
		if res[0].ToHost != want {
			return outcome{line: line, err: fmt.Errorf("the design depends on its scheduler for functional correctness")}
		}
		return outcome{line: line}
	})
	for _, res := range results {
		if res.line != "" {
			fmt.Println(res.line)
		}
		if res.err != nil {
			log.Fatal(res.err)
		}
	}
	fmt.Println("\nall schedules agree on the architectural result; the design is")
	fmt.Println("correct independently of rule ordering (cycle counts differ, as expected).")
}
