// Quickstart: build the paper's two-state machine two ways (combinators
// and textual source), run it on all three simulation pipelines, and emit
// the synthesis-side artifacts.
package main

import (
	"fmt"
	"log"

	"cuttlego"
	"cuttlego/internal/ast"
)

func main() {
	// 1. Build a design with the combinator API: the paper's §2.1 state
	// machine, with fA(x) = x + 10 and fB(x) = 3x.
	d := cuttlego.NewDesign("stm")
	state := ast.NewEnum("state", 1, "A", "B")
	d.Reg("st", state, 0)
	d.Reg("x", ast.Bits(32), 3)
	d.Rule("rlA",
		ast.Guard(ast.Eq(ast.Rd0("st"), ast.E(state, "A"))),
		ast.Wr0("st", ast.E(state, "B")),
		ast.Wr0("x", ast.Add(ast.Rd0("x"), ast.C(32, 10))),
	)
	d.Rule("rlB",
		ast.Guard(ast.Eq(ast.Rd0("st"), ast.E(state, "B"))),
		ast.Wr0("st", ast.E(state, "A")),
		ast.Wr0("x", ast.Mul(ast.Rd0("x"), ast.C(32, 3))),
	)
	if err := d.Check(); err != nil {
		log.Fatal(err)
	}

	// 2. Simulate with Cuttlesim (the fast pipeline).
	sim, err := cuttlego.NewSimulator(d, cuttlego.DefaultSimOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("cycle  st        x")
	for i := 0; i < 6; i++ {
		sim.Cycle()
		fmt.Printf("%5d  %-8s  %d\n", sim.CycleCount(),
			state.Format(sim.Reg("st")), sim.Reg("x").Val)
	}

	// 3. Cross-check against the reference interpreter and the
	// circuit-level pipeline.
	ref, _ := cuttlego.NewInterp(d)
	ckt, err := cuttlego.CompileCircuit(d)
	if err != nil {
		log.Fatal(err)
	}
	rtl, _ := cuttlego.NewRTLSim(ckt)
	cuttlego.Run(ref, nil, 6)
	cuttlego.Run(rtl, nil, 6)
	fmt.Printf("\ninterp x=%d, rtlsim x=%d, cuttlesim x=%d (must agree)\n",
		ref.Reg("x").Val, rtl.Reg("x").Val, sim.Reg("x").Val)

	// 4. The same design from text.
	parsed, err := cuttlego.Parse(`
design stm_text
enum state { A, B }
register st : state init state::A
register x  : bits<32> init 32'd3
rule rlA:
    guard st.rd0() == state::A
    st.wr0(state::B)
    x.wr0(x.rd0() + 32'd10)
rule rlB:
    guard st.rd0() == state::B
    st.wr0(state::A)
    x.wr0(x.rd0() * 32'd3)
schedule: rlA rlB
`)
	if err != nil {
		log.Fatal(err)
	}
	ps, _ := cuttlego.NewSimulator(parsed, cuttlego.DefaultSimOptions())
	cuttlego.Run(ps, nil, 6)
	fmt.Printf("parsed design after 6 cycles: x=%d\n", ps.Reg("x").Val)

	// 5. Synthesis-side artifact.
	fmt.Println("\ngenerated Verilog:")
	fmt.Println(cuttlego.EmitVerilog(ckt))
}
