// cache-coherence replays Case Study 1 interactively: the MSI system with
// the dropped-acknowledgement bug deadlocks; the debugger runs to the stuck
// state, prints the MSHR and parent state with their enum names, breaks on
// the failing rule's FAIL(), and steps backwards to inspect the history.
package main

import (
	"fmt"
	"log"

	"cuttlego"
	"cuttlego/internal/cache"
)

func main() {
	fmt.Println("== Case study 1: debugging a cache-coherence deadlock ==")
	sys := cache.Build(cache.Config{BugDroppedAck: true})
	if err := sys.Design.Check(); err != nil {
		log.Fatal(err)
	}
	dbg, err := cuttlego.NewDebugger(sys.Design, nil)
	if err != nil {
		log.Fatal(err)
	}

	// Run until the system wedges (operation counters stop moving).
	fmt.Println("running the buggy system to the deadlock ...")
	var last0, last1 uint64
	stuck := 0
	for stuck < 200 {
		dbg.Step()
		d0 := dbg.Engine().Reg(sys.OpsDone[0]).Val
		d1 := dbg.Engine().Reg(sys.OpsDone[1]).Val
		if d0 == last0 && d1 == last1 {
			stuck++
		} else {
			stuck = 0
			last0, last1 = d0, d1
		}
	}
	fmt.Printf("deadlocked at cycle %d (core0 done=%d, core1 done=%d)\n\n",
		dbg.CycleCount(), last0, last1)

	// "they use gdb's interactive interface to print out information
	// corresponding to relevant state" — enum and struct names intact.
	fmt.Println("relevant state (no bit slicing, no custom pretty-printers):")
	fmt.Println("  " + dbg.Print(sys.PStateRg))
	child := int(dbg.Engine().Reg("p_req_child").Val)
	fmt.Println("  " + dbg.Print(sys.MSHR[child]))
	fmt.Println("  " + dbg.Print(sys.MSHR[1-child]))

	// "they set a breakpoint on FAIL(), the macro used to exit early from
	// a rule."
	fmt.Println("\nbreaking on FAIL() in p_confirm ...")
	dbg.BreakOnFail("p_confirm")
	if !dbg.Continue(100) {
		log.Fatal("expected p_confirm to fail")
	}
	fmt.Println("  stopped:", dbg.StopReason())
	if _, desc, ok := dbg.LastFailureIn("p_confirm"); ok {
		fmt.Println("  cause:", desc)
	}

	// Explicit abort: the downgrade allegedly has not finished. But the
	// other core's cache line says otherwise — print it.
	fmt.Println("\ninspecting the other core's line states:")
	addr := dbg.Engine().Reg("p_req_addr").Val
	fmt.Printf("  parent waits on addr %d; %s\n", addr,
		dbg.Print(fmt.Sprintf("c%d_line_state_%d", 1-child, addr)))
	fmt.Printf("  ack queue from core %d: %s\n", 1-child,
		dbg.Print(fmt.Sprintf("c%d_c2p_ack_valid", 1-child)))
	fmt.Println("  -> the line already downgraded, yet no acknowledgement was sent:")
	fmt.Println("     the downgrade handler drops the ack for clean lines. Bug found.")

	// Reverse execution, rr-style.
	fmt.Println("\nstepping 50 cycles backwards to watch the history ...")
	if err := dbg.ReverseStep(50); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("now at cycle %d; %s\n", dbg.CycleCount(), dbg.Print(sys.PStateRg))

	// And the fixed system for contrast.
	fmt.Println("\n== same workload, fixed protocol ==")
	fixed := cache.Build(cache.Config{})
	if err := fixed.Design.Check(); err != nil {
		log.Fatal(err)
	}
	s, err := cuttlego.NewSimulator(fixed.Design, cuttlego.DefaultSimOptions())
	if err != nil {
		log.Fatal(err)
	}
	cuttlego.Run(s, nil, 3000)
	fmt.Printf("after 3000 cycles: core0 done=%d, core1 done=%d (no deadlock)\n",
		s.Reg(fixed.OpsDone[0]).Val, s.Reg(fixed.OpsDone[1]).Val)
}
