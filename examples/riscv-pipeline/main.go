// riscv-pipeline reproduces the flavor of Case Studies 3 and 4: it runs a
// branch-heavy benchmark on the rv32i core with the trivial pc+4 predictor
// and again with the BTB+BHT predictor, collecting Gcov-style coverage. The
// misprediction counts are read directly off the redirect line of the
// execute rule — no hardware counters — and the annotated listing shows the
// scoreboard stalls that motivate bypassing.
package main

import (
	"fmt"
	"log"
	"strings"

	"cuttlego/internal/cover"
	"cuttlego/internal/cuttlesim"
	"cuttlego/internal/riscv"
	"cuttlego/internal/rvcore"
	"cuttlego/internal/workload"
)

func main() {
	prog := workload.BranchHeavy(2000)

	type outcome struct {
		res       rvcore.Result
		redirects uint64
		stalls    uint64
		listing   string
	}
	run := func(cfg rvcore.Config) outcome {
		mem := riscv.NewMemory()
		mem.LoadWords(0, prog)
		d, core := rvcore.Build(cfg, mem)
		if err := d.Check(); err != nil {
			log.Fatal(err)
		}
		s, err := cuttlesim.New(d, cuttlesim.Options{Level: cuttlesim.LStatic, Coverage: true})
		if err != nil {
			log.Fatal(err)
		}
		res, err := rvcore.RunProgram(s, rvcore.NewBench(core), 5_000_000)
		if err != nil {
			log.Fatal(err)
		}
		counts := s.Coverage()
		return outcome{
			res:       res[0],
			redirects: cover.Count(counts, cover.WritesTo(d, core.PC, "execute")),
			stalls:    cover.Count(counts, cover.FailSites(d, "decode")),
			listing:   cover.Annotate(d, counts),
		}
	}

	base := run(rvcore.RV32I())
	bp := run(rvcore.RV32IBP())

	fmt.Println("branch-prediction exploration (coverage-counted, no hardware counters):")
	fmt.Printf("%-12s %12s %12s %8s %14s %16s\n",
		"design", "cycles", "instret", "IPC", "mispredicts", "decode stalls")
	fmt.Printf("%-12s %12d %12d %8.3f %14d %16d\n",
		"baseline", base.res.Cycles, base.res.Instret, base.res.IPC, base.redirects, base.stalls)
	fmt.Printf("%-12s %12d %12d %8.3f %14d %16d\n",
		"bp", bp.res.Cycles, bp.res.Instret, bp.res.IPC, bp.redirects, bp.stalls)
	fmt.Printf("\nmispredictions went down from %d to %d; both designs computed tohost=%d\n",
		base.redirects, bp.redirects, base.res.ToHost)

	fmt.Println("\nannotated execute stage (baseline), gcov-style:")
	inExecute := false
	for _, line := range strings.Split(base.listing, "\n") {
		if strings.Contains(line, "rule execute:") {
			inExecute = true
		}
		if strings.Contains(line, "rule decode:") {
			break
		}
		if inExecute && strings.TrimSpace(line) != "" {
			fmt.Println(line)
		}
	}
}
