// perf-debug replays Case Study 3: a 4-stage pipeline with idealized
// single-cycle memory retires 100 NOPs in ~2 cycles each — suspicious for
// a program with no branches. Stepping through the decode rule shows every
// NOP stalling on the scoreboard: the previous NOP's destination, x0, was
// tracked like a real dependency. The fixed design special-cases x0 and
// retires one NOP per cycle.
package main

import (
	"fmt"
	"log"

	"cuttlego/internal/cuttlesim"
	"cuttlego/internal/debug"
	"cuttlego/internal/riscv"
	"cuttlego/internal/rvcore"
	"cuttlego/internal/workload"
)

func main() {
	fmt.Println("== Case study 3: performance debugging the NOP pipeline ==")
	prog := workload.Nops(100)

	run := func(cfg rvcore.Config) (rvcore.Result, []cuttlesim.RuleStat) {
		mem := riscv.NewMemory()
		mem.LoadWords(0, prog)
		d, core := rvcore.Build(cfg, mem)
		if err := d.Check(); err != nil {
			log.Fatal(err)
		}
		s, err := cuttlesim.New(d, cuttlesim.Options{Level: cuttlesim.LStatic, Profile: true})
		if err != nil {
			log.Fatal(err)
		}
		res, err := rvcore.RunProgram(s, rvcore.NewBench(core), 10_000)
		if err != nil {
			log.Fatal(err)
		}
		return res[0], s.RuleStats()
	}

	buggy := rvcore.RV32I()
	buggy.BugX0 = true
	res, stats := run(buggy)
	fmt.Printf("\nretiring 100 NOPs took %d cycles — one would assume ~1 cycle per\n", res.Cycles)
	fmt.Println("instruction on a program with no branches. Something stalls.")

	fmt.Println("\nrule profile of the suspicious run:")
	fmt.Printf("  %-12s %10s %10s %10s\n", "rule", "attempts", "commits", "aborts")
	for _, st := range stats {
		fmt.Printf("  %-12s %10d %10d %10d\n", st.Rule, st.Attempts, st.Commits, st.Aborts())
	}
	fmt.Println("  -> decode aborts on roughly every other cycle: hazard stalls.")

	// Step through the decode rule watching the scoreboard check fail.
	fmt.Println("\nstepping rule by rule through two cycles of the buggy core:")
	mem := riscv.NewMemory()
	mem.LoadWords(0, prog)
	d, core := rvcore.Build(buggy, mem)
	if err := d.Check(); err != nil {
		log.Fatal(err)
	}
	dbg, err := debug.New(d, rvcore.NewBench(core))
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		dbg.Step()
	}
	dbg.BreakOnFail("decode")
	if dbg.Continue(20) {
		fmt.Println("  stopped:", dbg.StopReason())
		if _, desc, ok := dbg.LastFailureIn("decode"); ok {
			fmt.Println("  cause:", desc)
		}
		fmt.Println("  scoreboard entry for x0 at this point:")
		fmt.Println("   ", dbg.Print("sb_0"))
		fmt.Println("  -> a NOP is ADDI x0, x0, 0; x0 is hardwired zero, yet the")
		fmt.Println("     scoreboard tracked a dependency on it. That is the bug.")
	}

	fixed, _ := run(rvcore.RV32I())
	fmt.Printf("\nwith the x0 special case: %d cycles for the same program (%.2f cycles/NOP)\n",
		fixed.Cycles, float64(fixed.Cycles)/100)
	fmt.Printf("speedup from the one-line fix: %.2fx\n", float64(res.Cycles)/float64(fixed.Cycles))
}
