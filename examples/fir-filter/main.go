// fir-filter runs the Table 1 FIR design against its golden model, writes a
// VCD waveform of the run (the artifact a traditional flow would inspect in
// GTKWave), and prints the design's generated artifacts side by side.
package main

import (
	"fmt"
	"log"
	"os"

	"cuttlego"
	"cuttlego/internal/bits"
	"cuttlego/internal/cppgen"
	"cuttlego/internal/dsp"
	"cuttlego/internal/vcd"
	"cuttlego/internal/workload"
)

func main() {
	coeffs := []uint32{3, 1, 4, 1, 5, 9, 2, 6}
	inputs := workload.FIRInput(32, 2026)
	golden := dsp.FIRRef(coeffs, inputs)

	d := dsp.FIR(coeffs)
	if err := d.Check(); err != nil {
		log.Fatal(err)
	}
	s, err := cuttlego.NewSimulator(d, cuttlego.DefaultSimOptions())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("cycle      input     output     golden")
	mismatches := 0
	for i, in := range inputs {
		s.SetReg("in", bits.New(32, uint64(in)))
		s.Cycle()
		out := uint32(s.Reg("out").Val)
		marker := ""
		if out != golden[i] {
			marker = "  <-- MISMATCH"
			mismatches++
		}
		if i < 10 || out != golden[i] {
			fmt.Printf("%5d %10d %10d %10d%s\n", i, in, out, golden[i], marker)
		}
	}
	if mismatches == 0 {
		fmt.Printf("... all %d outputs match the golden model\n", len(inputs))
	}

	// Waveform for the traditional flow.
	f, err := os.CreateTemp("", "fir-*.vcd")
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	s2, _ := cuttlego.NewSimulator(dsp.FIR(coeffs).MustCheck(), cuttlego.DefaultSimOptions())
	if err := traceVCD(f, s2, inputs); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nVCD waveform written to %s\n", f.Name())

	// The readable generated model (what a debugger steps through in the
	// paper's workflow).
	model, err := cppgen.Emit(d)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ngenerated C++ model (excerpt):")
	for i, line := range splitN(model, 18) {
		fmt.Printf("  %2d| %s\n", i+1, line)
	}
}

func splitN(s string, n int) []string {
	var out []string
	start := 0
	for i := 0; i < len(s) && len(out) < n; i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	return out
}

func traceVCD(f *os.File, s *cuttlego.Simulator, inputs []uint32) error {
	// Drive manually so the waveform shows the real stimulus.
	w := vcd.New(f, s)
	if err := w.Sample(); err != nil {
		return err
	}
	for _, in := range inputs {
		s.SetReg("in", bits.New(32, uint64(in)))
		s.Cycle()
		if err := w.Sample(); err != nil {
			return err
		}
	}
	return nil
}
