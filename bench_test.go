// Benchmarks regenerating the paper's evaluation with the standard Go
// tooling: one benchmark family per table/figure. Each op is one simulated
// cycle, so ns/op is the inverse of the cycles-per-second the paper plots.
//
//	go test -bench=Fig1 -benchmem .
//
// BenchmarkFig1: Cuttlesim vs the circuit-level simulator (Figure 1).
// BenchmarkFig2: dynamic (koika) vs static (bluespec) netlists (Figure 2).
// BenchmarkFig3: closure vs bytecode engines (Figure 3's compiler sweep).
// BenchmarkAblation: the §3.2–3.3 optimization ladder on rv32i.
// BenchmarkTable1Artifacts: artifact generation cost for Table 1's counts.
package cuttlego_test

import (
	"fmt"
	"testing"

	"cuttlego/internal/bench"
	"cuttlego/internal/circuit"
	"cuttlego/internal/cppgen"
	"cuttlego/internal/cuttlesim"
	"cuttlego/internal/rtlsim"
	"cuttlego/internal/sim"
	"cuttlego/internal/verilog"
)

// runEngine drives one freshly built benchmark instance for b.N cycles.
func runEngine(b *testing.B, bm bench.Benchmark, eng bench.Engine) {
	b.Helper()
	inst := bm.New()
	e, err := eng.Make(inst)
	if err != nil {
		b.Fatal(err)
	}
	tb := inst.Bench
	if tb == nil {
		tb = sim.NopBench{}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tb.BeforeCycle(e)
		e.Cycle()
		tb.AfterCycle(e)
	}
}

func BenchmarkFig1(b *testing.B) {
	engines := []bench.Engine{
		bench.EngCuttlesim(cuttlesim.LStatic, cuttlesim.Closure),
		bench.EngRTL(circuit.StyleKoika, rtlsim.Closure),
		bench.EngRTLOpt(circuit.StyleKoika, rtlsim.Fused, true),
	}
	for _, bm := range bench.Suite() {
		for _, eng := range engines {
			b.Run(fmt.Sprintf("%s/%s", bm.Name, eng.Name), func(b *testing.B) {
				runEngine(b, bm, eng)
			})
		}
	}
}

func BenchmarkFig2(b *testing.B) {
	for _, bm := range bench.Suite() {
		free, err := circuit.StaticallyConflictFree(bm.New().Design)
		if err != nil {
			b.Fatal(err)
		}
		if !free {
			continue // static scheduling is not equivalent for this design
		}
		for _, style := range []circuit.Style{circuit.StyleKoika, circuit.StyleBluespec} {
			b.Run(fmt.Sprintf("%s/%s", bm.Name, style), func(b *testing.B) {
				runEngine(b, bm, bench.EngRTL(style, rtlsim.Closure))
			})
		}
	}
}

func BenchmarkFig3(b *testing.B) {
	engines := []bench.Engine{
		bench.EngCuttlesim(cuttlesim.LStatic, cuttlesim.Closure),
		bench.EngCuttlesim(cuttlesim.LStatic, cuttlesim.Bytecode),
		bench.EngRTL(circuit.StyleKoika, rtlsim.Closure),
		bench.EngRTL(circuit.StyleKoika, rtlsim.Switch),
		bench.EngRTL(circuit.StyleKoika, rtlsim.Fused),
		bench.EngRTLOpt(circuit.StyleKoika, rtlsim.Fused, true),
	}
	for _, name := range []string{"rv32i", "fir"} {
		bm, ok := bench.Lookup(name)
		if !ok {
			b.Fatal("missing benchmark", name)
		}
		for _, eng := range engines {
			b.Run(fmt.Sprintf("%s/%s", bm.Name, eng.Name), func(b *testing.B) {
				runEngine(b, bm, eng)
			})
		}
	}
}

func BenchmarkAblation(b *testing.B) {
	bm, _ := bench.Lookup("rv32i")
	for _, level := range cuttlesim.Levels() {
		b.Run(level.String(), func(b *testing.B) {
			runEngine(b, bm, bench.EngCuttlesim(level, cuttlesim.Closure))
		})
	}
}

func BenchmarkTable1Artifacts(b *testing.B) {
	for _, bm := range bench.Suite() {
		b.Run(bm.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				inst := bm.New()
				if _, err := cppgen.LineCount(inst.Design); err != nil {
					b.Fatal(err)
				}
				ckt, err := circuit.Compile(inst.Design, circuit.StyleKoika)
				if err != nil {
					b.Fatal(err)
				}
				_ = verilog.LineCount(ckt)
			}
		})
	}
}
