package cuttlego_test

import (
	"strings"
	"testing"

	"cuttlego"
	"cuttlego/internal/ast"
	"cuttlego/internal/bits"
)

// The facade supports the full quickstart flow: build, simulate on both
// pipelines, emit Verilog, and debug.
func TestFacadeQuickstart(t *testing.T) {
	d := cuttlego.NewDesign("counter")
	d.Reg("x", ast.Bits(8), 0)
	d.Rule("inc", ast.Wr0("x", ast.Add(ast.Rd0("x"), ast.C(8, 1))))
	if err := d.Check(); err != nil {
		t.Fatal(err)
	}

	s, err := cuttlego.NewSimulator(d, cuttlego.DefaultSimOptions())
	if err != nil {
		t.Fatal(err)
	}
	cuttlego.Run(s, nil, 10)
	if got := s.Reg("x"); got != bits.New(8, 10) {
		t.Errorf("x = %v", got)
	}

	ref, err := cuttlego.NewInterp(d)
	if err != nil {
		t.Fatal(err)
	}
	cuttlego.Run(ref, nil, 10)
	if ref.Reg("x") != s.Reg("x") {
		t.Error("pipelines disagree")
	}

	ckt, err := cuttlego.CompileCircuit(d)
	if err != nil {
		t.Fatal(err)
	}
	rtl, err := cuttlego.NewRTLSim(ckt)
	if err != nil {
		t.Fatal(err)
	}
	cuttlego.Run(rtl, nil, 10)
	if rtl.Reg("x") != s.Reg("x") {
		t.Error("netlist pipeline disagrees")
	}
	fused, err := cuttlego.NewFusedRTLSim(cuttlego.OptimizeCircuit(ckt))
	if err != nil {
		t.Fatal(err)
	}
	cuttlego.Run(fused, nil, 10)
	if fused.Reg("x") != s.Reg("x") {
		t.Error("optimized netlist pipeline disagrees")
	}
	if v := cuttlego.EmitVerilog(ckt); !strings.Contains(v, "module counter") {
		t.Error("verilog emission broken")
	}

	dbg, err := cuttlego.NewDebugger(d, nil)
	if err != nil {
		t.Fatal(err)
	}
	dbg.Step()
	if !strings.Contains(dbg.Print("x"), "8'x1") {
		t.Errorf("debugger print = %q", dbg.Print("x"))
	}
}

func TestFacadeParse(t *testing.T) {
	d, err := cuttlego.Parse(`
design fromtext
register x : bits<8> init 8'd7
rule double:
    x.wr0(x.rd0() + x.rd0())
schedule: double
`)
	if err != nil {
		t.Fatal(err)
	}
	s, err := cuttlego.NewSimulator(d, cuttlego.DefaultSimOptions())
	if err != nil {
		t.Fatal(err)
	}
	cuttlego.Run(s, nil, 2)
	if got := s.Reg("x"); got != bits.New(8, 28) {
		t.Errorf("x = %v", got)
	}
}
